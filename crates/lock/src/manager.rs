//! The shared-memory lock manager.
//!
//! Every LCB update happens inside a line-lock critical section, with the
//! logical lock-log record written *before* the updated line is released —
//! so lock state can never migrate to another node without the acquiring
//! node's log describing it (the Volatile LBM discipline applied to the
//! lock table, §4.2.2 + §5.1).
//!
//! Forward-path fast lane: under strict 2PL only the owning transaction
//! ever releases its own grant, so the volatile per-transaction chain
//! ([`TxnChains`], a flat open-addressed map with inline entry arrays) is
//! an authoritative record of "does `txn` already hold `name`, and how
//! strongly". The dominant re-acquire / compatible-re-read case is
//! answered from the chain alone — no LCB line read, no line lock, no log
//! record (the original grant is already logged) — counted by
//! [`LockStats::fast_hits`] and the `lock.fast_hits` obs counter.

use crate::lcb::{Lcb, LockEntry};
use crate::mode::LockMode;
use crate::table::LockTable;
use serde::{Deserialize, Serialize};
use smdb_obs::Event as ObsEvent;
use smdb_sim::{LineId, Machine, MemError, NodeId, TxnId};
use smdb_wal::{LogPayload, LogSet, StructuralKind};
use std::fmt;

/// Histogram of simulated cycles each logical lock was held, recorded on
/// release when observability is enabled.
pub const HOLD_CYCLES_HISTOGRAM: &str = smdb_obs::names::LOCK_HOLD_CYCLES;

/// Counter of acquire requests served entirely from the volatile chain
/// (re-acquire in a sufficient mode): no simulated memory traffic.
pub const FAST_HITS_COUNTER: &str = smdb_obs::names::LOCK_FAST_HITS;

/// Counter of write locks released early at commit-record append
/// (controlled lock violation), before the covering force.
pub const EARLY_RELEASED_COUNTER: &str = smdb_obs::names::LOCK_EARLY_RELEASED;

/// Result of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted.
    Granted,
    /// The transaction already held the lock in a sufficient mode.
    AlreadyHeld,
    /// The request conflicts and was queued; the paper logs queued
    /// requests too (§4.2.2). The caller decides whether to block or (as
    /// the no-wait engines in this reproduction do) abort and retry.
    Waiting,
}

/// Lock-manager errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockError {
    /// Underlying memory error (stall, lost line, crashed node...).
    Mem(MemError),
    /// The LCB's fixed-capacity holder or waiter array is full.
    CapacityExceeded {
        /// The lock whose LCB overflowed.
        name: u64,
    },
    /// Release of a lock the transaction does not hold.
    NotHolder {
        /// The releasing transaction.
        txn: TxnId,
        /// The lock it does not hold.
        name: u64,
    },
}

impl From<MemError> for LockError {
    fn from(e: MemError) -> Self {
        LockError::Mem(e)
    }
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Mem(e) => write!(f, "memory error: {e}"),
            LockError::CapacityExceeded { name } => {
                write!(f, "LCB capacity exceeded for lock {name}")
            }
            LockError::NotHolder { txn, name } => write!(f, "{txn} does not hold lock {name}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Lock-manager counters (several feed the Table 1 overhead report).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockStats {
    /// Granted acquisitions.
    pub acquires: u64,
    /// Granted shared-mode acquisitions.
    pub shared_acquires: u64,
    /// Granted exclusive-mode acquisitions.
    pub exclusive_acquires: u64,
    /// Requests that were queued.
    pub waits: u64,
    /// Releases.
    pub releases: u64,
    /// Waiters promoted to holders by releases.
    pub promotions: u64,
    /// Overflow lines allocated (early-committed structural changes).
    pub overflow_allocs: u64,
    /// Re-acquire requests served from the volatile chain with no LCB
    /// traffic (the fast lane).
    pub fast_hits: u64,
    /// Exclusive locks released early (at commit-record append, before the
    /// covering force) under controlled lock violation.
    pub early_released: u64,
}

impl LockStats {
    /// Fold an execution lane's counters into this one (epoch-barrier
    /// merge; see `LockManager::lane_fork`).
    pub fn absorb(&mut self, other: &LockStats) {
        self.acquires += other.acquires;
        self.shared_acquires += other.shared_acquires;
        self.exclusive_acquires += other.exclusive_acquires;
        self.waits += other.waits;
        self.releases += other.releases;
        self.promotions += other.promotions;
        self.overflow_allocs += other.overflow_allocs;
        self.fast_hits += other.fast_hits;
        self.early_released += other.early_released;
    }
}

const CHAIN_INLINE: usize = 8;

/// Sentinel for "no acquire timestamp recorded" (observability disabled
/// at grant time).
const NO_TIME: u64 = u64::MAX;

/// One held lock in a transaction's chain: the name, the granted mode
/// (kept in lockstep with the LCB holder entry), and the simulated
/// acquire timestamp for the hold-time histogram.
#[derive(Clone, Copy, Debug)]
struct ChainEntry {
    name: u64,
    mode: LockMode,
    acquired_at: u64,
}

const EMPTY_CHAIN_ENTRY: ChainEntry =
    ChainEntry { name: 0, mode: LockMode::Shared, acquired_at: NO_TIME };

/// One transaction's lock chain: an inline small-vec of entries in
/// acquisition order, spilling to the heap only past [`CHAIN_INLINE`]
/// simultaneously-held locks.
#[derive(Clone, Debug)]
struct ChainSlot {
    txn: TxnId,
    len: u32,
    inline: [ChainEntry; CHAIN_INLINE],
    spill: Vec<ChainEntry>,
}

impl ChainSlot {
    fn entry(&self, i: usize) -> &ChainEntry {
        if i < CHAIN_INLINE {
            &self.inline[i]
        } else {
            &self.spill[i - CHAIN_INLINE]
        }
    }

    fn entry_mut(&mut self, i: usize) -> &mut ChainEntry {
        if i < CHAIN_INLINE {
            &mut self.inline[i]
        } else {
            &mut self.spill[i - CHAIN_INLINE]
        }
    }

    fn find(&self, name: u64) -> Option<usize> {
        (0..self.len as usize).find(|&i| self.entry(i).name == name)
    }

    fn push(&mut self, e: ChainEntry) {
        let i = self.len as usize;
        if i < CHAIN_INLINE {
            self.inline[i] = e;
        } else {
            self.spill.push(e);
        }
        self.len += 1;
    }

    /// Order-preserving removal (releases must happen in acquisition
    /// order for log-stream stability).
    fn remove(&mut self, i: usize) -> ChainEntry {
        let n = self.len as usize;
        let e = *self.entry(i);
        for j in i..n - 1 {
            *self.entry_mut(j) = *self.entry(j + 1);
        }
        if n > CHAIN_INLINE {
            self.spill.pop();
        }
        self.len -= 1;
        e
    }
}

const CTRL_EMPTY: u8 = 0;
const CTRL_FULL: u8 = 1;
const CTRL_TOMB: u8 = 2;

/// Flat per-transaction lock chains: an open-addressed `TxnId → slot`
/// index over a recycled slot arena (same flat-slot pattern as the sim's
/// line directory). Replaces the old `BTreeMap<TxnId, Vec<u64>>` chain
/// map *and* the separate `BTreeMap<(TxnId, u64), u64>` acquire-time map,
/// whose entries previously accumulated without bound across
/// transactions: a slot is freed (and reused by later transactions) the
/// moment its last entry is released, so footprint is bounded by the
/// peak number of concurrently lock-holding transactions.
#[derive(Clone, Debug)]
struct TxnChains {
    ctrl: Vec<u8>,
    keys: Vec<u64>,
    slot_of: Vec<u32>,
    slots: Vec<ChainSlot>,
    free: Vec<u32>,
    live: usize,
    used: usize,
}

impl TxnChains {
    fn new() -> Self {
        let cap = 64;
        TxnChains {
            ctrl: vec![CTRL_EMPTY; cap],
            keys: vec![0; cap],
            slot_of: vec![0; cap],
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            used: 0,
        }
    }

    fn start(&self, key: u64) -> usize {
        let h = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        h as usize & (self.ctrl.len() - 1)
    }

    fn probe(&self, txn: TxnId) -> Option<u32> {
        let mask = self.ctrl.len() - 1;
        let mut i = self.start(txn.0);
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => return None,
                CTRL_FULL if self.keys[i] == txn.0 => return Some(self.slot_of[i]),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn slot(&self, txn: TxnId) -> Option<&ChainSlot> {
        self.probe(txn).map(|s| &self.slots[s as usize])
    }

    fn slot_mut_or_insert(&mut self, txn: TxnId) -> &mut ChainSlot {
        if let Some(s) = self.probe(txn) {
            return &mut self.slots[s as usize];
        }
        if (self.used + 1) * 8 >= self.ctrl.len() * 7 {
            self.grow();
        }
        let s = match self.free.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                slot.txn = txn;
                slot.len = 0;
                slot.spill.clear();
                s
            }
            None => {
                self.slots.push(ChainSlot {
                    txn,
                    len: 0,
                    inline: [EMPTY_CHAIN_ENTRY; CHAIN_INLINE],
                    spill: Vec::new(),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let mask = self.ctrl.len() - 1;
        let mut i = self.start(txn.0);
        let mut first_tomb = None;
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => {
                    let at = first_tomb.unwrap_or(i);
                    if self.ctrl[at] == CTRL_EMPTY {
                        self.used += 1;
                    }
                    self.ctrl[at] = CTRL_FULL;
                    self.keys[at] = txn.0;
                    self.slot_of[at] = s;
                    self.live += 1;
                    return &mut self.slots[s as usize];
                }
                CTRL_TOMB => {
                    first_tomb.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn unlink(&mut self, txn: TxnId) {
        let mask = self.ctrl.len() - 1;
        let mut i = self.start(txn.0);
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => return,
                CTRL_FULL if self.keys[i] == txn.0 => {
                    let s = self.slot_of[i];
                    self.ctrl[i] = CTRL_TOMB;
                    self.live -= 1;
                    self.slots[s as usize].len = 0;
                    self.slots[s as usize].spill.clear();
                    self.free.push(s);
                    return;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let cap = self.ctrl.len() * 2;
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![CTRL_EMPTY; cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_slot_of = std::mem::replace(&mut self.slot_of, vec![0; cap]);
        self.used = 0;
        for i in 0..old_ctrl.len() {
            if old_ctrl[i] == CTRL_FULL {
                let mask = cap - 1;
                let mut j = self.start(old_keys[i]);
                while self.ctrl[j] != CTRL_EMPTY {
                    j = (j + 1) & mask;
                }
                self.ctrl[j] = CTRL_FULL;
                self.keys[j] = old_keys[i];
                self.slot_of[j] = old_slot_of[i];
                self.used += 1;
            }
        }
    }

    /// The granted mode of `name` in `txn`'s chain, if held.
    fn mode_of(&self, txn: TxnId, name: u64) -> Option<LockMode> {
        let slot = self.slot(txn)?;
        slot.find(name).map(|i| slot.entry(i).mode)
    }

    /// Record a grant (or strengthen an existing one to `mode`).
    fn grant(&mut self, txn: TxnId, name: u64, mode: LockMode) {
        let slot = self.slot_mut_or_insert(txn);
        match slot.find(name) {
            Some(i) => {
                let e = slot.entry_mut(i);
                e.mode = e.mode.max(mode);
            }
            None => slot.push(ChainEntry { name, mode, acquired_at: NO_TIME }),
        }
    }

    /// Record the acquire timestamp if none was recorded yet (matches the
    /// old `acquired_at.entry(..).or_insert(now)`).
    fn note_acquired(&mut self, txn: TxnId, name: u64, now: u64) {
        if let Some(s) = self.probe(txn) {
            let slot = &mut self.slots[s as usize];
            if let Some(i) = slot.find(name) {
                let e = slot.entry_mut(i);
                if e.acquired_at == NO_TIME {
                    e.acquired_at = now;
                }
            }
        }
    }

    /// Remove `name` from `txn`'s chain, freeing the slot when it empties.
    /// Returns the recorded acquire timestamp, if any.
    fn remove_name(&mut self, txn: TxnId, name: u64) -> Option<u64> {
        let s = self.probe(txn)?;
        let slot = &mut self.slots[s as usize];
        let i = slot.find(name)?;
        let e = slot.remove(i);
        if slot.len == 0 {
            self.unlink(txn);
        }
        (e.acquired_at != NO_TIME).then_some(e.acquired_at)
    }

    /// Drop `txn`'s entire chain (crashed transaction).
    fn drop_txn(&mut self, txn: TxnId) {
        if self.probe(txn).is_some() {
            self.unlink(txn);
        }
    }

    /// Held lock names in acquisition order.
    fn names_of(&self, txn: TxnId) -> Vec<u64> {
        match self.slot(txn) {
            Some(slot) => (0..slot.len as usize).map(|i| slot.entry(i).name).collect(),
            None => Vec::new(),
        }
    }

    fn txn_count(&self) -> usize {
        self.live
    }

    /// Every chain entry across all transactions, as `(txn, name, mode)`.
    fn all_entries(&self) -> Vec<(TxnId, u64, LockMode)> {
        let mut out = Vec::new();
        for i in 0..self.ctrl.len() {
            if self.ctrl[i] != CTRL_FULL {
                continue;
            }
            let slot = &self.slots[self.slot_of[i] as usize];
            for j in 0..slot.len as usize {
                let e = slot.entry(j);
                out.push((slot.txn, e.name, e.mode));
            }
        }
        out
    }

    /// (allocated slots, live chains) — slot-arena footprint, for
    /// bounded-growth regression tests.
    fn footprint(&self) -> (usize, usize) {
        (self.slots.len(), self.live)
    }
}

/// The shared-memory lock manager (*SM locking*).
#[derive(Clone, Debug)]
pub struct LockManager {
    table: LockTable,
    /// Per-transaction chains of held lock names (+ granted mode and
    /// acquire timestamp). Volatile derived state: reconstructible from
    /// the LCBs themselves (each entry carries its transaction id),
    /// exactly as §4.2.2 prescribes for pointer-based structures: *"first
    /// restore the data that the pointers are derived from, then
    /// reconstruct the pointers"*.
    chains: TxnChains,
    stats: LockStats,
}

impl LockManager {
    /// Wrap a created [`LockTable`].
    pub fn new(table: LockTable) -> Self {
        LockManager { table, chains: TxnChains::new(), stats: LockStats::default() }
    }

    /// The underlying table.
    pub fn table(&self) -> &LockTable {
        &self.table
    }

    /// Manager statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// A detached manager for an execution lane (epoch-parallel
    /// execution). The lane sees the same table geometry (its placement
    /// cache is verify-on-hit, so a stale clone self-corrects) but starts
    /// with empty chains and zeroed stats: the deterministic epoch
    /// scheduler grants record locks serially on the *parent* manager
    /// before the lane runs, so the only lock-manager calls a lane makes
    /// are end-of-transaction `release_all`s, which find no chain and
    /// touch no shared memory. Fold the lane back with
    /// [`LockManager::lane_absorb`].
    pub fn lane_fork(&self) -> LockManager {
        LockManager {
            table: self.table.clone(),
            chains: TxnChains::new(),
            stats: LockStats::default(),
        }
    }

    /// Fold a lane manager's counters back into the parent at an epoch
    /// barrier. Counter addition commutes, so sibling-lane merge order
    /// cannot change the totals.
    pub fn lane_absorb(&mut self, lane: &LockManager) {
        self.stats.absorb(&lane.stats);
    }

    /// Locks currently held by `txn` (from the volatile chain), in
    /// acquisition order.
    pub fn held_locks(&self, txn: TxnId) -> Vec<u64> {
        self.chains.names_of(txn)
    }

    /// The mode `txn` holds `name` in, if any (volatile chain lookup; no
    /// simulated memory traffic).
    pub fn held_mode(&self, txn: TxnId, name: u64) -> Option<LockMode> {
        self.chains.mode_of(txn, name)
    }

    /// Number of transactions with at least one held lock.
    pub fn transactions_with_locks(&self) -> usize {
        self.chains.txn_count()
    }

    /// Chain-arena footprint as (allocated slots, live chains): slots are
    /// recycled, so allocated slots track the *peak* concurrent
    /// lock-holding transactions, not the total ever run.
    pub fn chain_footprint(&self) -> (usize, usize) {
        self.chains.footprint()
    }

    /// Lockstep cross-check of the two representations of lock state: the
    /// volatile per-transaction chains (the fast lane's authority) against
    /// the durable LCB table in shared memory (recovery's authority), in
    /// both directions. Every chain entry must appear as an LCB holder in
    /// the same mode, and every LCB holder must appear in its
    /// transaction's chain. Returns human-readable violations (empty =
    /// consistent). Reads run as `node`; call only when the machine is
    /// quiescent and recovered — a crashed node's lines legitimately
    /// diverge until restart scrubs them.
    pub fn verify_chains(&self, m: &mut Machine, node: NodeId) -> Result<Vec<String>, LockError> {
        let mut violations = Vec::new();
        // Chains → table.
        for (txn, name, mode) in self.chains.all_entries() {
            match self.table.find(m, node, name)? {
                Some((_, _, lcb)) => match lcb.holders.iter().find(|e| e.txn == txn) {
                    Some(h) if h.mode == mode => {}
                    Some(h) => violations.push(format!(
                        "lock {name}: chain says {txn} holds {mode:?}, LCB says {:?}",
                        h.mode
                    )),
                    None => violations.push(format!(
                        "lock {name}: chain says {txn} holds {mode:?}, LCB has no such holder"
                    )),
                },
                None => violations
                    .push(format!("lock {name}: chain says {txn} holds {mode:?}, no LCB exists")),
            }
        }
        // Table → chains.
        for line in self.table.all_lines() {
            let lcbs = m.read_line_with(node, line, |img| self.table.decode_line(img))?;
            for (_, lcb) in lcbs {
                for h in lcb.holders.iter() {
                    match self.chains.mode_of(h.txn, lcb.name) {
                        Some(mode) if mode == h.mode => {}
                        Some(mode) => violations.push(format!(
                            "lock {}: LCB says {} holds {:?}, chain says {mode:?}",
                            lcb.name, h.txn, h.mode
                        )),
                        None => {
                            violations.push(format!(
                                "lock {}: LCB says {} holds {:?}, absent from its chain",
                                lcb.name, h.txn, h.mode
                            ));
                        }
                    }
                }
            }
        }
        Ok(violations)
    }

    /// Acquire `name` in `mode` on behalf of `txn`, executing on its home
    /// node.
    pub fn acquire(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        mode: LockMode,
    ) -> Result<LockOutcome, LockError> {
        self.acquire_from(m, logs, txn, name, mode, txn.node())
    }

    /// Acquire `name` in `mode` on behalf of `txn`, with the lock-table
    /// work (and the logical log record) executed on `acting` — used by
    /// parallel transactions (§9), whose operations run on several nodes.
    ///
    /// Protocol per §4.2.2/§5.1: locate the LCB; *log the request* (read
    /// locks and queued requests included) on the acting node's log;
    /// update the LCB inside a `getline` critical section; release the
    /// line.
    pub fn acquire_from(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        mode: LockMode,
        acting: NodeId,
    ) -> Result<LockOutcome, LockError> {
        self.acquire_inner(m, logs, txn, name, mode, acting, true)
    }

    /// [`acquire_from`](Self::acquire_from) with *polling* conflict
    /// semantics: a conflicting request returns [`LockOutcome::Waiting`]
    /// without queueing in the LCB and without a log record — the caller
    /// re-issues the request later (paying the LCB probe traffic each
    /// time) instead of parking a logged waiter it would have to cancel.
    /// Used by the pipelined-commit workload driver, whose blocked
    /// transactions retry in place rather than abort.
    pub fn poll_from(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        mode: LockMode,
        acting: NodeId,
    ) -> Result<LockOutcome, LockError> {
        self.acquire_inner(m, logs, txn, name, mode, acting, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn acquire_inner(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        mode: LockMode,
        acting: NodeId,
        queue: bool,
    ) -> Result<LockOutcome, LockError> {
        assert!(name != 0, "lock name 0 is reserved");
        // Fast lane: strict 2PL means a granted lock stays granted until
        // this same transaction releases it, so the volatile chain alone
        // proves a sufficient re-acquire. No LCB read, no line lock, no
        // log record (the original grant is logged already) — the exact
        // semantics of the slow path's AlreadyHeld branch.
        if let Some(held) = self.chains.mode_of(txn, name) {
            if held >= mode {
                self.stats.fast_hits += 1;
                m.obs().metrics.inc(FAST_HITS_COUNTER);
                return Ok(LockOutcome::AlreadyHeld);
            }
        }
        let node = acting;
        // Locate or make room (may allocate an early-committed overflow
        // line).
        let (line, slot, mut lcb) = match self.table.find(m, node, name)? {
            Some(found) => found,
            None => {
                let (line, slot) = self.ensure_empty_slot(m, logs, txn, name, node)?;
                (line, slot, Lcb::new(name))
            }
        };
        // Critical section: the LCB line cannot migrate between the log
        // write and the LCB update.
        m.getline(node, line)?;
        let result = (|| {
            // Re-read under the line lock (the pre-lock find raced with
            // nothing in this deterministic simulator, but the discipline
            // is the real protocol's).
            if let Some((l2, s2, fresh)) = self.table.find(m, node, name)? {
                debug_assert_eq!((l2, s2), (line, slot));
                lcb = fresh;
            }
            if lcb.holds(txn) {
                let held = lcb.holders.iter().find(|e| e.txn == txn).expect("holds() checked").mode;
                if held >= mode {
                    return Ok(LockOutcome::AlreadyHeld);
                }
                // Upgrade S→X: only if sole holder.
                if lcb.holders.len() == 1 && lcb.waiters.is_empty() {
                    logs.append(
                        node,
                        LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: false },
                    );
                    lcb.holders[0].mode = mode;
                    self.table.write_lcb(m, node, line, slot, &lcb)?;
                    self.chains.grant(txn, name, mode);
                    self.stats.acquires += 1;
                    self.stats.exclusive_acquires += 1;
                    return Ok(LockOutcome::Granted);
                }
                // Conflicting upgrade: queue it (or, when polling, just
                // report the conflict and leave no trace to cancel).
                if !queue {
                    return Ok(LockOutcome::Waiting);
                }
                if lcb.waiters.len() >= self.table.geometry().max_waiters {
                    return Err(LockError::CapacityExceeded { name });
                }
                logs.append(
                    node,
                    LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: true },
                );
                lcb.waiters.push(LockEntry { txn, mode });
                self.table.write_lcb(m, node, line, slot, &lcb)?;
                self.stats.waits += 1;
                return Ok(LockOutcome::Waiting);
            }
            if lcb.can_grant(txn, mode) {
                // A full holder array is backpressure, not corruption: the
                // request is compatible but must wait for a holder slot to
                // free up. Polling callers retry in place; queueing callers
                // park a waiter (promotion re-checks holder capacity).
                if lcb.holders.len() >= self.table.geometry().max_holders {
                    if !queue {
                        return Ok(LockOutcome::Waiting);
                    }
                    if lcb.waiters.len() >= self.table.geometry().max_waiters {
                        return Err(LockError::CapacityExceeded { name });
                    }
                    logs.append(
                        node,
                        LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: true },
                    );
                    lcb.waiters.push(LockEntry { txn, mode });
                    self.table.write_lcb(m, node, line, slot, &lcb)?;
                    self.stats.waits += 1;
                    return Ok(LockOutcome::Waiting);
                }
                logs.append(
                    node,
                    LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: false },
                );
                lcb.holders.push(LockEntry { txn, mode });
                self.table.write_lcb(m, node, line, slot, &lcb)?;
                self.chains.grant(txn, name, mode);
                self.stats.acquires += 1;
                match mode {
                    LockMode::Shared => self.stats.shared_acquires += 1,
                    LockMode::Exclusive => self.stats.exclusive_acquires += 1,
                }
                Ok(LockOutcome::Granted)
            } else {
                if !queue {
                    return Ok(LockOutcome::Waiting);
                }
                if lcb.waiters.len() >= self.table.geometry().max_waiters {
                    return Err(LockError::CapacityExceeded { name });
                }
                logs.append(
                    node,
                    LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: true },
                );
                lcb.waiters.push(LockEntry { txn, mode });
                self.table.write_lcb(m, node, line, slot, &lcb)?;
                self.stats.waits += 1;
                Ok(LockOutcome::Waiting)
            }
        })();
        m.releaseline(node, line)?;
        if m.obs().bus.is_enabled() || m.obs().metrics.is_enabled() {
            let now = m.now(node);
            match &result {
                Ok(LockOutcome::Granted) => {
                    self.chains.note_acquired(txn, name, now);
                    m.obs().bus.emit(now, || ObsEvent::LockAcquire {
                        node: node.0,
                        txn: txn.0,
                        name,
                        exclusive: mode == LockMode::Exclusive,
                    });
                }
                Ok(LockOutcome::Waiting) => {
                    m.obs().bus.emit(now, || ObsEvent::LockWouldBlock {
                        node: node.0,
                        txn: txn.0,
                        name,
                    });
                }
                _ => {}
            }
        }
        result
    }

    /// Make room for a new LCB, allocating an overflow line if the chain
    /// is full. Overflow allocation is a structural change: it is logged
    /// and *forced* (early commit, §4.2) before the new space is linked,
    /// so no transaction can become dependent on volatile structural
    /// state. The force is always physical — even under coalescing, an
    /// early commit by definition cannot wait in a pending window.
    fn ensure_empty_slot(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        acting: NodeId,
    ) -> Result<(LineId, usize), LockError> {
        let node = acting;
        if let Some(found) = self.table.find_empty_slot(m, node, name)? {
            return Ok(found);
        }
        let chain = self.table.chain_for(m, node, name)?;
        let tail = *chain.last().expect("chain non-empty");
        let new_line = self.table.alloc_overflow(m, node, tail)?;
        let lsn = logs.append(
            node,
            LogPayload::Structural {
                txn,
                kind: StructuralKind::LockSpaceAlloc { line: new_line.0, parent: tail.0 },
            },
        );
        if logs.log_mut(node).force_to(lsn) {
            let force_cost = m.config().cost.log_force;
            m.advance(node, force_cost);
        }
        self.stats.overflow_allocs += 1;
        Ok((new_line, 0))
    }

    /// Release `name` held by `txn`; grants any waiters that become
    /// compatible. Returns the promoted entries (the engine resumes those
    /// transactions). Each promotion is logged on the *promoted*
    /// transaction's node so its lock state remains redoable.
    pub fn release(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
    ) -> Result<Vec<LockEntry>, LockError> {
        let node = txn.node();
        let (line, slot, mut lcb) =
            self.table.find(m, node, name)?.ok_or(LockError::NotHolder { txn, name })?;
        if !lcb.holds(txn) {
            return Err(LockError::NotHolder { txn, name });
        }
        m.getline(node, line)?;
        let result = (|| {
            logs.append(node, LogPayload::LockRelease { txn, name, wait_only: false });
            lcb.remove(txn);
            let promoted = lcb.promote_waiters(self.table.geometry().max_holders);
            for p in promoted.iter() {
                logs.append(
                    p.txn.node(),
                    LogPayload::LockAcquire {
                        txn: p.txn,
                        name,
                        mode: p.mode.into(),
                        queued: false,
                    },
                );
                // A promoted *upgrade* strengthens the existing chain
                // entry; a fresh grant appends one.
                self.chains.grant(p.txn, name, p.mode);
            }
            if lcb.is_empty() {
                self.table.clear_lcb(m, node, line, slot)?;
                self.table.forget_placement(name);
            } else {
                self.table.write_lcb(m, node, line, slot, &lcb)?;
            }
            self.stats.releases += 1;
            self.stats.promotions += promoted.len() as u64;
            Ok(promoted)
        })();
        m.releaseline(node, line)?;
        let acquired_at = self.chains.remove_name(txn, name);
        if m.obs().bus.is_enabled() || m.obs().metrics.is_enabled() {
            let now = m.now(node);
            if let Ok(promoted) = &result {
                let held = acquired_at.map(|t0| now.saturating_sub(t0)).unwrap_or(0);
                m.obs().metrics.observe(HOLD_CYCLES_HISTOGRAM, held);
                m.obs().bus.emit(now, || ObsEvent::LockRelease {
                    node: node.0,
                    txn: txn.0,
                    name,
                    held_cycles: held,
                });
                for p in promoted.iter() {
                    self.chains.note_acquired(p.txn, name, now);
                    m.obs().bus.emit(now, || ObsEvent::LockAcquire {
                        node: p.txn.node().0,
                        txn: p.txn.0,
                        name,
                        exclusive: p.mode == LockMode::Exclusive,
                    });
                }
            }
        }
        result
    }

    /// Cancel a *queued* (waiting) request by `txn` on `name`. Used by the
    /// engine's no-wait policy: a transaction that would block is aborted,
    /// and its queued request — which was logged — must be withdrawn (with
    /// a matching release record, so log replay converges).
    pub fn cancel_wait(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
    ) -> Result<bool, LockError> {
        let node = txn.node();
        let Some((line, slot, mut lcb)) = self.table.find(m, node, name)? else {
            return Ok(false);
        };
        if !lcb.waiters.iter().any(|w| w.txn == txn) {
            return Ok(false);
        }
        m.getline(node, line)?;
        let result = (|| {
            logs.append(node, LogPayload::LockRelease { txn, name, wait_only: true });
            lcb.waiters.retain(|w| w.txn != txn);
            let promoted = lcb.promote_waiters(self.table.geometry().max_holders);
            for p in promoted.iter() {
                logs.append(
                    p.txn.node(),
                    LogPayload::LockAcquire {
                        txn: p.txn,
                        name,
                        mode: p.mode.into(),
                        queued: false,
                    },
                );
                self.chains.grant(p.txn, name, p.mode);
            }
            self.stats.promotions += promoted.len() as u64;
            if lcb.is_empty() {
                self.table.clear_lcb(m, node, line, slot)?;
                self.table.forget_placement(name);
            } else {
                self.table.write_lcb(m, node, line, slot, &lcb)?;
            }
            Ok(true)
        })();
        m.releaseline(node, line)?;
        result
    }

    /// Release every lock held by `txn` (commit/abort path under strict
    /// 2PL: locks are not released until the transaction ends — §2).
    /// Returns all promoted entries with the lock they were granted.
    pub fn release_all(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
    ) -> Result<Vec<(u64, LockEntry)>, LockError> {
        let names: Vec<u64> = self.held_locks(txn);
        let mut promoted = Vec::new();
        for name in names {
            promoted.extend(self.release(m, logs, txn, name)?.into_iter().map(|e| (name, e)));
        }
        Ok(promoted)
    }

    /// Release every lock held by `txn` at commit-record *append* time
    /// (early lock release / controlled lock violation). Mechanically
    /// identical to [`release_all`](Self::release_all) — the LCB updates
    /// and log records are the same, which is exactly why recovery needs
    /// no changes — but it additionally reports which names were held
    /// exclusively (those become violation edges: the data they guard
    /// carries a not-yet-durable commit) and counts them in
    /// [`LockStats::early_released`] and the `lock.early_released`
    /// counter.
    ///
    /// Returns `(released, promoted)`: every released `(name, mode)` in
    /// acquisition order, and the waiter entries promoted by the releases.
    #[allow(clippy::type_complexity)]
    pub fn early_release_all(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
    ) -> Result<(Vec<(u64, LockMode)>, Vec<(u64, LockEntry)>), LockError> {
        let names: Vec<u64> = self.held_locks(txn);
        let mut released = Vec::with_capacity(names.len());
        let mut promoted = Vec::new();
        for name in names {
            let mode = self.chains.mode_of(txn, name).expect("held_locks listed it");
            if mode == LockMode::Exclusive {
                self.stats.early_released += 1;
                m.obs().metrics.inc(EARLY_RELEASED_COUNTER);
            }
            released.push((name, mode));
            promoted.extend(self.release(m, logs, txn, name)?.into_iter().map(|e| (name, e)));
        }
        Ok((released, promoted))
    }

    /// Forget a transaction's volatile chain without touching LCBs. Used
    /// when the transaction's node crashed (its chain is gone anyway) after
    /// recovery has scrubbed the LCBs.
    pub fn drop_chain(&mut self, txn: TxnId) {
        self.chains.drop_txn(txn);
    }

    /// Current holders of `name` (coherent read by `node`).
    pub fn holders_of(
        &self,
        m: &mut Machine,
        node: NodeId,
        name: u64,
    ) -> Result<Vec<LockEntry>, LockError> {
        Ok(self.table.find(m, node, name)?.map(|(_, _, l)| l.holders.to_vec()).unwrap_or_default())
    }

    /// Current waiters on `name`.
    pub fn waiters_of(
        &self,
        m: &mut Machine,
        node: NodeId,
        name: u64,
    ) -> Result<Vec<LockEntry>, LockError> {
        Ok(self.table.find(m, node, name)?.map(|(_, _, l)| l.waiters.to_vec()).unwrap_or_default())
    }

    pub(crate) fn table_mut(&mut self) -> &mut LockTable {
        &mut self.table
    }

    /// Replace every volatile chain with `entries` (recovery phase 3:
    /// chains rebuilt from the reconstructed LCBs, in table order).
    /// Acquire timestamps of grants that survive across the rebuild are
    /// preserved for the hold-time histogram.
    pub(crate) fn rebuild_chains(&mut self, entries: &[(TxnId, u64, LockMode)]) {
        let old = std::mem::replace(&mut self.chains, TxnChains::new());
        for &(txn, name, mode) in entries {
            self.chains.grant(txn, name, mode);
            if let Some(slot) = old.slot(txn) {
                if let Some(i) = slot.find(name) {
                    let at = slot.entry(i).acquired_at;
                    if at != NO_TIME {
                        self.chains.note_acquired(txn, name, at);
                    }
                }
            }
        }
    }

    pub(crate) fn stats_mut(&mut self) -> &mut LockStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcb::LcbGeometry;
    use smdb_sim::SimConfig;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup() -> (Machine, LogSet, LockManager) {
        let mut m = Machine::new(SimConfig::new(4));
        let logs = LogSet::new(4);
        let table = LockTable::create(&mut m, N0, 5000, 16, LcbGeometry::co_located()).unwrap();
        (m, logs, LockManager::new(table))
    }

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn exclusive_grant_then_conflict_queues() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Granted
        );
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Waiting
        );
        assert_eq!(mgr.stats().acquires, 1);
        assert_eq!(mgr.stats().waits, 1);
        assert_eq!(mgr.held_locks(tx), &[7]);
        assert!(mgr.held_locks(ty).is_empty());
    }

    #[test]
    fn shared_locks_coexist() {
        let (mut m, mut logs, mut mgr) = setup();
        for node in 0..3 {
            let txn = t(node, 1);
            assert_eq!(
                mgr.acquire(&mut m, &mut logs, txn, 7, LockMode::Shared).unwrap(),
                LockOutcome::Granted
            );
        }
        let holders = mgr.holders_of(&mut m, N0, 7).unwrap();
        assert_eq!(holders.len(), 3);
    }

    #[test]
    fn release_promotes_waiter() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap();
        let promoted = mgr.release(&mut m, &mut logs, tx, 7).unwrap();
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].txn, ty);
        assert_eq!(mgr.held_locks(ty), &[7]);
        let holders = mgr.holders_of(&mut m, N0, 7).unwrap();
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].txn, ty);
    }

    #[test]
    fn release_not_held_is_error() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        assert_eq!(
            mgr.release(&mut m, &mut logs, tx, 7),
            Err(LockError::NotHolder { txn: tx, name: 7 })
        );
    }

    #[test]
    fn already_held_is_idempotent() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap(),
            LockOutcome::AlreadyHeld
        );
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::AlreadyHeld
        );
        assert_eq!(mgr.stats().fast_hits, 2, "both re-acquires served from the chain");
    }

    #[test]
    fn fast_lane_adds_no_log_records_or_traffic() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        let appends = logs.log(N0).stats().appends;
        let reads = m.stats().reads;
        for _ in 0..10 {
            assert_eq!(
                mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap(),
                LockOutcome::AlreadyHeld
            );
        }
        assert_eq!(logs.log(N0).stats().appends, appends, "no new log records");
        assert_eq!(m.stats().reads, reads, "no coherent reads");
        assert_eq!(mgr.stats().fast_hits, 10);
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Granted
        );
        let holders = mgr.holders_of(&mut m, N0, 7).unwrap();
        assert_eq!(holders[0].mode, LockMode::Exclusive);
        // The chain tracked the strengthened grant: an X re-acquire is now
        // a fast hit, not a queued upgrade.
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::AlreadyHeld
        );
        assert_eq!(mgr.stats().fast_hits, 1);
    }

    #[test]
    fn upgrade_with_other_sharer_waits() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Shared).unwrap();
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Waiting
        );
    }

    #[test]
    fn read_locks_are_logged() {
        // Table 1's "Logging of Read Locks" overhead: the shared request
        // must appear in the acquiring node's log.
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        assert_eq!(logs.log(N1).stats().read_lock_records, 1);
        assert_eq!(logs.log(N0).stats().read_lock_records, 0);
    }

    #[test]
    fn queued_requests_are_logged() {
        let (mut m, mut logs, mut mgr) = setup();
        mgr.acquire(&mut m, &mut logs, t(0, 1), 7, LockMode::Exclusive).unwrap();
        mgr.acquire(&mut m, &mut logs, t(1, 1), 7, LockMode::Exclusive).unwrap();
        let queued = logs
            .log(N1)
            .records()
            .iter()
            .any(|r| matches!(r.payload, LogPayload::LockAcquire { queued: true, .. }));
        assert!(queued);
    }

    #[test]
    fn release_all_clears_chain() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        for name in [3u64, 4, 5] {
            mgr.acquire(&mut m, &mut logs, tx, name, LockMode::Exclusive).unwrap();
        }
        assert_eq!(mgr.held_locks(tx).len(), 3);
        mgr.release_all(&mut m, &mut logs, tx).unwrap();
        assert!(mgr.held_locks(tx).is_empty());
        for name in [3u64, 4, 5] {
            assert!(mgr.holders_of(&mut m, N0, name).unwrap().is_empty());
        }
    }

    #[test]
    fn early_release_all_reports_modes_and_counts_exclusives() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 3, LockMode::Exclusive).unwrap();
        mgr.acquire(&mut m, &mut logs, tx, 4, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, tx, 5, LockMode::Exclusive).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 3, LockMode::Exclusive).unwrap();
        let (released, promoted) = mgr.early_release_all(&mut m, &mut logs, tx).unwrap();
        assert_eq!(
            released,
            vec![(3, LockMode::Exclusive), (4, LockMode::Shared), (5, LockMode::Exclusive)],
            "released names in acquisition order with their modes"
        );
        assert_eq!(promoted.len(), 1, "ty's queued request was promoted");
        assert_eq!(promoted[0].0, 3);
        assert_eq!(promoted[0].1.txn, ty);
        assert_eq!(mgr.stats().early_released, 2, "only exclusives counted");
        assert!(mgr.held_locks(tx).is_empty());
    }

    #[test]
    fn poll_conflict_leaves_no_queued_state_or_records() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        let appends = logs.log(N1).stats().appends;
        for _ in 0..3 {
            assert_eq!(
                mgr.poll_from(&mut m, &mut logs, ty, 7, LockMode::Exclusive, N1).unwrap(),
                LockOutcome::Waiting
            );
        }
        assert_eq!(logs.log(N1).stats().appends, appends, "polls log nothing");
        assert!(mgr.waiters_of(&mut m, N0, 7).unwrap().is_empty(), "no queued waiter");
        assert_eq!(mgr.stats().waits, 0);
        // Once the holder releases, the next poll is granted normally —
        // with the single LockAcquire record any immediate grant writes.
        mgr.release(&mut m, &mut logs, tx, 7).unwrap();
        assert_eq!(
            mgr.poll_from(&mut m, &mut logs, ty, 7, LockMode::Exclusive, N1).unwrap(),
            LockOutcome::Granted
        );
        assert_eq!(mgr.held_locks(ty), &[7]);
    }

    #[test]
    fn lcb_line_migrates_to_last_toucher() {
        // The §3.1 failure-effect scenario: the last node to acquire a lock
        // holds the only copy of the LCB line.
        let (mut m, mut logs, mut mgr) = setup();
        mgr.acquire(&mut m, &mut logs, t(0, 1), 7, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, t(1, 1), 7, LockMode::Shared).unwrap();
        let line = mgr.table().bucket_line(7);
        assert_eq!(m.exclusive_owner(line), Some(N1));
    }

    #[test]
    fn observability_records_hold_times_and_events() {
        let (mut m, mut logs, mut mgr) = setup();
        m.obs().enable(64);
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        m.advance(N0, 500);
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Waiting
        );
        mgr.release(&mut m, &mut logs, tx, 7).unwrap();
        let h = m.obs().metrics.histogram(HOLD_CYCLES_HISTOGRAM).unwrap();
        assert_eq!(h.count, 1, "one completed hold (the promoted waiter still holds)");
        assert!(h.max >= 500, "hold time includes the advanced cycles: {}", h.max);
        let kinds: Vec<&str> = m.obs().bus.snapshot().iter().map(|r| r.event.kind()).collect();
        for expected in ["lock_acquire", "lock_would_block", "lock_release"] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
    }

    #[test]
    fn overflow_alloc_is_forced_structural_commit() {
        let (mut m, mut logs, mut mgr) = setup();
        // Grab many names colliding into the same bucket until overflow.
        // With 16 buckets and 2 slots each, 33+ distinct names guarantee
        // some bucket overflows.
        for i in 0..64u64 {
            let txn = t(0, i + 1);
            mgr.acquire(&mut m, &mut logs, txn, i + 1, LockMode::Exclusive).unwrap();
        }
        assert!(mgr.stats().overflow_allocs > 0, "expected at least one overflow");
        assert_eq!(logs.log(N0).stats().structural_records, mgr.stats().overflow_allocs);
        // Each structural record was forced (early commit) — physical
        // forces, not merely requests.
        assert_eq!(logs.log(N0).stats().forces, mgr.stats().overflow_allocs);
        let stable = logs.log(N0).stable_records();
        let forced_structural =
            stable.iter().filter(|r| matches!(r.payload, LogPayload::Structural { .. })).count()
                as u64;
        assert_eq!(forced_structural, mgr.stats().overflow_allocs);
    }

    #[test]
    fn chain_slots_recycle_across_transactions() {
        let (mut m, mut logs, mut mgr) = setup();
        // Sequential transactions each hold a few locks then release all:
        // the arena must stay at the concurrency footprint (1), not grow
        // with transaction count.
        for seq in 1..=200u64 {
            let tx = t(0, seq);
            for name in [3u64, 4, 5] {
                mgr.acquire(&mut m, &mut logs, tx, name, LockMode::Exclusive).unwrap();
            }
            mgr.release_all(&mut m, &mut logs, tx).unwrap();
        }
        let (slots, live) = mgr.chain_footprint();
        assert_eq!(live, 0);
        assert_eq!(slots, 1, "one recycled slot serves every sequential transaction");
    }
}
