//! A pure-logic reference lock manager for differential testing.
//!
//! [`ReferenceLockManager`] mirrors every *decision* the real
//! [`LockManager`](crate::LockManager) makes — grant / already-held /
//! upgrade / queue / promote, capacity errors included — over plain
//! `BTreeMap` state, with none of the shared-memory machinery (no cache
//! lines, no placement hints, no line locks, no overflow chains). Placement
//! never affects a decision: grants depend only on the per-name holder and
//! waiter lists plus the geometry's capacity limits, which is exactly the
//! state this model keeps.
//!
//! It also records the logical lock-log stream (acquires — queued ones
//! included — and releases) per node, in the same order the real manager
//! appends them, so a differential test can assert that the flat-slot
//! implementation would drive recovery identically.
//!
//! This model is *test infrastructure*: nothing in the forward or recovery
//! path depends on it.

use crate::lcb::{Lcb, LockEntry};
use crate::manager::{LockError, LockOutcome};
use crate::mode::LockMode;
use smdb_sim::{NodeId, TxnId};
use std::collections::BTreeMap;

/// One logical lock-log record, as the reference model sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefLockRecord {
    /// A grant or a queued request.
    Acquire {
        /// Requesting transaction.
        txn: TxnId,
        /// Lock name.
        name: u64,
        /// Requested mode.
        mode: LockMode,
        /// Whether the request was queued rather than granted.
        queued: bool,
    },
    /// A release (or a withdrawn queued request).
    Release {
        /// Releasing transaction.
        txn: TxnId,
        /// Lock name.
        name: u64,
        /// `true` when only a queued request was withdrawn.
        wait_only: bool,
    },
}

/// The reference model. Same decision procedure as the real manager,
/// minimal state.
#[derive(Clone, Debug, Default)]
pub struct ReferenceLockManager {
    max_holders: usize,
    max_waiters: usize,
    lcbs: BTreeMap<u64, Lcb>,
    chains: BTreeMap<TxnId, Vec<u64>>,
    logs: BTreeMap<u16, Vec<RefLockRecord>>,
}

impl ReferenceLockManager {
    /// Build a model with the geometry's capacity limits.
    pub fn new(max_holders: usize, max_waiters: usize) -> Self {
        ReferenceLockManager { max_holders, max_waiters, ..Default::default() }
    }

    /// The recorded lock-log stream of `node`.
    pub fn log_of(&self, node: NodeId) -> &[RefLockRecord] {
        self.logs.get(&node.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Current holders of `name`.
    pub fn holders_of(&self, name: u64) -> Vec<LockEntry> {
        self.lcbs.get(&name).map(|l| l.holders.to_vec()).unwrap_or_default()
    }

    /// Current waiters on `name`.
    pub fn waiters_of(&self, name: u64) -> Vec<LockEntry> {
        self.lcbs.get(&name).map(|l| l.waiters.to_vec()).unwrap_or_default()
    }

    /// Names held by `txn`, in acquisition order.
    pub fn held_locks(&self, txn: TxnId) -> Vec<u64> {
        self.chains.get(&txn).cloned().unwrap_or_default()
    }

    fn log(&mut self, node: NodeId, rec: RefLockRecord) {
        self.logs.entry(node.0).or_default().push(rec);
    }

    fn chain_grant(&mut self, txn: TxnId, name: u64) {
        let chain = self.chains.entry(txn).or_default();
        if !chain.contains(&name) {
            chain.push(name);
        }
    }

    fn chain_drop(&mut self, txn: TxnId, name: u64) {
        if let Some(chain) = self.chains.get_mut(&txn) {
            chain.retain(|&n| n != name);
            if chain.is_empty() {
                self.chains.remove(&txn);
            }
        }
    }

    /// Mirror of [`LockManager::acquire_from`](crate::LockManager::acquire_from).
    pub fn acquire_from(
        &mut self,
        txn: TxnId,
        name: u64,
        mode: LockMode,
        acting: NodeId,
    ) -> Result<LockOutcome, LockError> {
        assert!(name != 0, "lock name 0 is reserved");
        let max_holders = self.max_holders;
        let max_waiters = self.max_waiters;
        let lcb = self.lcbs.entry(name).or_insert_with(|| Lcb::new(name));
        if lcb.holds(txn) {
            let held = lcb.holders.iter().find(|e| e.txn == txn).expect("holds() checked").mode;
            if held >= mode {
                return Ok(LockOutcome::AlreadyHeld);
            }
            if lcb.holders.len() == 1 && lcb.waiters.is_empty() {
                lcb.holders[0].mode = mode;
                self.log(acting, RefLockRecord::Acquire { txn, name, mode, queued: false });
                return Ok(LockOutcome::Granted);
            }
            if lcb.waiters.len() >= max_waiters {
                return Err(LockError::CapacityExceeded { name });
            }
            lcb.waiters.push(LockEntry { txn, mode });
            self.log(acting, RefLockRecord::Acquire { txn, name, mode, queued: true });
            return Ok(LockOutcome::Waiting);
        }
        if lcb.can_grant(txn, mode) {
            // Mirror of the manager's backpressure rule: a compatible
            // request against a full holder array parks a waiter instead
            // of failing.
            if lcb.holders.len() >= max_holders {
                if lcb.waiters.len() >= max_waiters {
                    return Err(LockError::CapacityExceeded { name });
                }
                lcb.waiters.push(LockEntry { txn, mode });
                self.log(acting, RefLockRecord::Acquire { txn, name, mode, queued: true });
                return Ok(LockOutcome::Waiting);
            }
            lcb.holders.push(LockEntry { txn, mode });
            self.log(acting, RefLockRecord::Acquire { txn, name, mode, queued: false });
            self.chain_grant(txn, name);
            Ok(LockOutcome::Granted)
        } else {
            if lcb.waiters.len() >= max_waiters {
                return Err(LockError::CapacityExceeded { name });
            }
            lcb.waiters.push(LockEntry { txn, mode });
            self.log(acting, RefLockRecord::Acquire { txn, name, mode, queued: true });
            Ok(LockOutcome::Waiting)
        }
    }

    /// Mirror of [`LockManager::poll_from`](crate::LockManager::poll_from):
    /// the same decision procedure as [`acquire_from`](Self::acquire_from),
    /// but a conflict reports [`LockOutcome::Waiting`] without queueing a
    /// waiter, logging a record, or checking waiter capacity — polling
    /// leaves no trace to cancel.
    pub fn poll_from(
        &mut self,
        txn: TxnId,
        name: u64,
        mode: LockMode,
        acting: NodeId,
    ) -> Result<LockOutcome, LockError> {
        assert!(name != 0, "lock name 0 is reserved");
        let max_holders = self.max_holders;
        let lcb = self.lcbs.entry(name).or_insert_with(|| Lcb::new(name));
        if lcb.holds(txn) {
            let held = lcb.holders.iter().find(|e| e.txn == txn).expect("holds() checked").mode;
            if held >= mode {
                return Ok(LockOutcome::AlreadyHeld);
            }
            if lcb.holders.len() == 1 && lcb.waiters.is_empty() {
                lcb.holders[0].mode = mode;
                self.log(acting, RefLockRecord::Acquire { txn, name, mode, queued: false });
                return Ok(LockOutcome::Granted);
            }
            return Ok(LockOutcome::Waiting);
        }
        if lcb.can_grant(txn, mode) {
            // Full holder array: backpressure — polling retries in place.
            if lcb.holders.len() >= max_holders {
                return Ok(LockOutcome::Waiting);
            }
            lcb.holders.push(LockEntry { txn, mode });
            self.log(acting, RefLockRecord::Acquire { txn, name, mode, queued: false });
            self.chain_grant(txn, name);
            Ok(LockOutcome::Granted)
        } else {
            Ok(LockOutcome::Waiting)
        }
    }

    /// Mirror of [`LockManager::early_release_all`](crate::LockManager::early_release_all):
    /// identical LCB transitions and log records to
    /// [`release_all`](Self::release_all), additionally reporting the
    /// released `(name, mode)` pairs in acquisition order (the exclusive
    /// ones become violation edges).
    #[allow(clippy::type_complexity)]
    pub fn early_release_all(
        &mut self,
        txn: TxnId,
    ) -> Result<(Vec<(u64, LockMode)>, Vec<(u64, LockEntry)>), LockError> {
        let names = self.held_locks(txn);
        let mut released = Vec::with_capacity(names.len());
        let mut promoted = Vec::new();
        for name in names {
            let mode = self
                .lcbs
                .get(&name)
                .and_then(|l| l.holders.iter().find(|e| e.txn == txn))
                .expect("held_locks listed it")
                .mode;
            released.push((name, mode));
            promoted.extend(self.release(txn, name)?.into_iter().map(|e| (name, e)));
        }
        Ok((released, promoted))
    }

    /// Mirror of [`LockManager::release`](crate::LockManager::release).
    pub fn release(&mut self, txn: TxnId, name: u64) -> Result<Vec<LockEntry>, LockError> {
        let holds = self.lcbs.get(&name).map(|l| l.holds(txn)).unwrap_or(false);
        if !holds {
            return Err(LockError::NotHolder { txn, name });
        }
        self.log(txn.node(), RefLockRecord::Release { txn, name, wait_only: false });
        let max_holders = self.max_holders;
        let lcb = self.lcbs.get_mut(&name).expect("holds checked");
        lcb.remove(txn);
        let promoted = lcb.promote_waiters(max_holders);
        let empty = lcb.is_empty();
        for p in promoted.iter() {
            self.log(
                p.txn.node(),
                RefLockRecord::Acquire { txn: p.txn, name, mode: p.mode, queued: false },
            );
            self.chain_grant(p.txn, name);
        }
        if empty {
            self.lcbs.remove(&name);
        }
        self.chain_drop(txn, name);
        Ok(promoted)
    }

    /// Mirror of [`LockManager::cancel_wait`](crate::LockManager::cancel_wait).
    pub fn cancel_wait(&mut self, txn: TxnId, name: u64) -> Result<bool, LockError> {
        let waiting =
            self.lcbs.get(&name).map(|l| l.waiters.iter().any(|w| w.txn == txn)).unwrap_or(false);
        if !waiting {
            return Ok(false);
        }
        self.log(txn.node(), RefLockRecord::Release { txn, name, wait_only: true });
        let max_holders = self.max_holders;
        let lcb = self.lcbs.get_mut(&name).expect("waiting checked");
        lcb.waiters.retain(|w| w.txn != txn);
        let promoted = lcb.promote_waiters(max_holders);
        let empty = lcb.is_empty();
        for p in promoted.iter() {
            self.log(
                p.txn.node(),
                RefLockRecord::Acquire { txn: p.txn, name, mode: p.mode, queued: false },
            );
            self.chain_grant(p.txn, name);
        }
        if empty {
            self.lcbs.remove(&name);
        }
        Ok(true)
    }

    /// Mirror of [`LockManager::release_all`](crate::LockManager::release_all).
    pub fn release_all(&mut self, txn: TxnId) -> Result<Vec<(u64, LockEntry)>, LockError> {
        let names = self.held_locks(txn);
        let mut promoted = Vec::new();
        for name in names {
            promoted.extend(self.release(txn, name)?.into_iter().map(|e| (name, e)));
        }
        Ok(promoted)
    }

    /// Crash `node`: every entry of its transactions disappears from the
    /// lock space and unblocked waiters are promoted — the state the real
    /// manager must arrive at after `recover`. The crashed node's log
    /// stream is discarded (its volatile tail is gone; stable prefixes
    /// aren't modelled here).
    pub fn crash_node(&mut self, node: NodeId) -> Vec<(u64, LockEntry)> {
        self.logs.remove(&node.0);
        self.chains.retain(|txn, _| txn.node() != node);
        let mut promoted_all = Vec::new();
        let max_holders = self.max_holders;
        let names: Vec<u64> = self.lcbs.keys().copied().collect();
        for name in names {
            let lcb = self.lcbs.get_mut(&name).expect("keys just listed");
            lcb.holders.retain(|e| e.txn.node() != node);
            lcb.waiters.retain(|e| e.txn.node() != node);
            let promoted = lcb.promote_waiters(max_holders);
            let empty = lcb.is_empty();
            for p in promoted.iter() {
                self.chain_grant(p.txn, name);
                promoted_all.push((name, *p));
            }
            if empty {
                self.lcbs.remove(&name);
            }
        }
        promoted_all
    }
}
