//! The shared-memory lock table: hash-addressed bucket lines of LCBs.
//!
//! §4.2.2: *"Using a hash function, the name is translated to an LCB
//! address specific to one lock."* Buckets are cache lines holding
//! [`LcbGeometry::lcbs_per_line`] LCB slots plus an overflow pointer;
//! overflow lines are allocated dynamically — a *structural* change that
//! the manager commits early (§4.2).
//!
//! The table keeps a volatile, open-addressed **placement cache**
//! (name → `(line, slot)`) so the dominant find path costs one coherent
//! line read instead of a chain walk (overflow-pointer read + per-line
//! slot scan). The cache is a hint, never an authority: every hit is
//! verified against the decoded slot under the coherent read, stale
//! entries self-heal by falling back to the chain walk, and recovery
//! invalidates the whole cache before reconstructing lost lines.

use crate::lcb::{self, Lcb, LcbGeometry};
use smdb_sim::{LineId, Machine, MemError, NodeId};
use std::cell::RefCell;

/// Hash a lock name to a bucket index (splitmix64 finalizer: cheap and
/// well-distributed).
fn bucket_hash(name: u64) -> u64 {
    let mut z = name.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Largest slot any supported geometry encodes; bounds the stack buffers
/// used by the allocation-free [`LockTable::write_lcb`] path.
const MAX_SLOT_SIZE: usize = 128;

const CTRL_EMPTY: u8 = 0;
const CTRL_FULL: u8 = 1;
const CTRL_TOMB: u8 = 2;

/// Open-addressed name → `(line, slot)` placement hints (same flat-slot
/// pattern as the sim's `LineIndex`: Fibonacci probing, tombstones,
/// doubling growth at 7/8 load). Volatile host-side bookkeeping — a real
/// implementation would keep this in node-local memory; the simulation
/// charges the coherent verification read on every use.
#[derive(Clone, Debug)]
struct PlacementCache {
    ctrl: Vec<u8>,
    names: Vec<u64>,
    lines: Vec<u64>,
    slots: Vec<u8>,
    len: usize,
    used: usize,
}

impl PlacementCache {
    fn new() -> Self {
        let cap = 64;
        PlacementCache {
            ctrl: vec![CTRL_EMPTY; cap],
            names: vec![0; cap],
            lines: vec![0; cap],
            slots: vec![0; cap],
            len: 0,
            used: 0,
        }
    }

    fn start(&self, name: u64) -> usize {
        let h = (name.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        h as usize & (self.ctrl.len() - 1)
    }

    fn get(&self, name: u64) -> Option<(LineId, usize)> {
        let mask = self.ctrl.len() - 1;
        let mut i = self.start(name);
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => return None,
                CTRL_FULL if self.names[i] == name => {
                    return Some((LineId(self.lines[i]), self.slots[i] as usize));
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn insert(&mut self, name: u64, line: LineId, slot: usize) {
        if (self.used + 1) * 8 >= self.ctrl.len() * 7 {
            self.grow();
        }
        let mask = self.ctrl.len() - 1;
        let mut i = self.start(name);
        let mut first_tomb = None;
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => {
                    let at = first_tomb.unwrap_or(i);
                    if self.ctrl[at] == CTRL_EMPTY {
                        self.used += 1;
                    }
                    self.ctrl[at] = CTRL_FULL;
                    self.names[at] = name;
                    self.lines[at] = line.0;
                    self.slots[at] = slot as u8;
                    self.len += 1;
                    return;
                }
                CTRL_FULL if self.names[i] == name => {
                    self.lines[i] = line.0;
                    self.slots[i] = slot as u8;
                    return;
                }
                CTRL_TOMB => {
                    first_tomb.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn remove(&mut self, name: u64) {
        let mask = self.ctrl.len() - 1;
        let mut i = self.start(name);
        loop {
            match self.ctrl[i] {
                CTRL_EMPTY => return,
                CTRL_FULL if self.names[i] == name => {
                    self.ctrl[i] = CTRL_TOMB;
                    self.len -= 1;
                    return;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn clear(&mut self) {
        self.ctrl.fill(CTRL_EMPTY);
        self.len = 0;
        self.used = 0;
    }

    fn grow(&mut self) {
        let cap = self.ctrl.len() * 2;
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![CTRL_EMPTY; cap]);
        let old_names = std::mem::replace(&mut self.names, vec![0; cap]);
        let old_lines = std::mem::replace(&mut self.lines, vec![0; cap]);
        let old_slots = std::mem::replace(&mut self.slots, vec![0; cap]);
        self.len = 0;
        self.used = 0;
        for i in 0..old_ctrl.len() {
            if old_ctrl[i] == CTRL_FULL {
                self.insert(old_names[i], LineId(old_lines[i]), old_slots[i] as usize);
            }
        }
    }
}

/// The lock table: a fixed array of bucket lines in shared memory, plus
/// dynamically allocated overflow lines.
#[derive(Clone, Debug)]
pub struct LockTable {
    base: u64,
    n_buckets: usize,
    geom: LcbGeometry,
    line_size: usize,
    /// Overflow lines allocated so far, as (parent line, overflow line).
    /// Derived state: each allocation is recorded in a forced structural
    /// log record, so this list is reconstructible from the stable logs;
    /// we keep the materialized copy as volatile bookkeeping.
    overflow_lines: Vec<(LineId, LineId)>,
    /// Volatile placement hints (see module docs). Interior mutability so
    /// read paths (`find`) can maintain it.
    placement: RefCell<PlacementCache>,
}

impl LockTable {
    /// Create the lock table: `n_buckets` zeroed bucket lines starting at
    /// line address `base`, created in `node`'s cache. Pre-allocation means
    /// the base table involves no structural changes at run time.
    pub fn create(
        m: &mut Machine,
        node: NodeId,
        base: u64,
        n_buckets: usize,
        geom: LcbGeometry,
    ) -> Result<LockTable, MemError> {
        assert!(n_buckets > 0, "lock table needs at least one bucket");
        assert!(geom.fits(m.line_size()), "LCB geometry does not fit the cache line size");
        assert!(geom.slot_size() <= MAX_SLOT_SIZE, "slot exceeds the encode stack buffer");
        let zero = vec![0u8; m.line_size()];
        for i in 0..n_buckets {
            m.create_line_at(node, LineId(base + i as u64), &zero)?;
        }
        Ok(LockTable {
            base,
            n_buckets,
            geom,
            line_size: m.line_size(),
            overflow_lines: Vec::new(),
            placement: RefCell::new(PlacementCache::new()),
        })
    }

    /// The LCB geometry in use.
    pub fn geometry(&self) -> &LcbGeometry {
        &self.geom
    }

    /// Number of base buckets.
    pub fn bucket_count(&self) -> usize {
        self.n_buckets
    }

    /// The bucket line a lock name hashes to.
    pub fn bucket_line(&self, name: u64) -> LineId {
        LineId(self.base + bucket_hash(name) % self.n_buckets as u64)
    }

    /// Whether `line` belongs to the lock table (base bucket or overflow).
    pub fn owns_line(&self, line: LineId) -> bool {
        (line.0 >= self.base && line.0 < self.base + self.n_buckets as u64)
            || self.overflow_lines.iter().any(|&(_, l)| l == line)
    }

    /// Every line of the table: base buckets then overflow lines.
    pub fn all_lines(&self) -> Vec<LineId> {
        let mut v: Vec<LineId> =
            (0..self.n_buckets as u64).map(|i| LineId(self.base + i)).collect();
        v.extend(self.overflow_lines.iter().map(|&(_, l)| l));
        v
    }

    /// Drop every placement hint. Recovery calls this before it scrubs and
    /// reconstructs LCB lines: reconstruction repacks slots, so all prior
    /// placements are suspect.
    pub fn invalidate_placement(&self) {
        self.placement.borrow_mut().clear();
    }

    /// Drop the placement hint for one name (slot reclaimed).
    pub fn forget_placement(&self, name: u64) {
        self.placement.borrow_mut().remove(name);
    }

    /// Number of live placement hints (bounded-growth regression checks).
    pub fn placement_len(&self) -> usize {
        self.placement.borrow().len
    }

    /// The overflow line linked from `line`, if any, according to the
    /// coherent contents read by `node`.
    pub fn read_overflow_of(
        &self,
        m: &mut Machine,
        node: NodeId,
        line: LineId,
    ) -> Result<Option<LineId>, MemError> {
        let ptr = m.read_line_with(node, line, |img| lcb::read_overflow(&self.geom, img))?;
        Ok(if ptr == 0 { None } else { Some(LineId(ptr)) })
    }

    /// Walk the bucket chain for `name`, returning the lines in order.
    pub fn chain_for(
        &self,
        m: &mut Machine,
        node: NodeId,
        name: u64,
    ) -> Result<Vec<LineId>, MemError> {
        let mut chain = vec![self.bucket_line(name)];
        loop {
            let last = *chain.last().expect("chain non-empty");
            match self.read_overflow_of(m, node, last)? {
                Some(next) => chain.push(next),
                None => break,
            }
        }
        Ok(chain)
    }

    /// Find the slot holding `name`: returns `(line, slot index, decoded
    /// LCB)`.
    ///
    /// Fast path: one verified coherent read at the cached placement.
    /// Slow path (cache miss or stale hint): the chain walk, which then
    /// refreshes the cache.
    pub fn find(
        &self,
        m: &mut Machine,
        node: NodeId,
        name: u64,
    ) -> Result<Option<(LineId, usize, Lcb)>, MemError> {
        let hint = self.placement.borrow().get(name);
        if let Some((line, slot)) = hint {
            let off = self.geom.slot_offset(slot);
            match m.read_line_with(node, line, |img| {
                lcb::decode_slot(&self.geom, &img[off..off + self.geom.slot_size()])
            }) {
                Ok(Some(l)) if l.name == name => return Ok(Some((line, slot, l))),
                // Slot empty, reused by another name, or the line is
                // stalled/lost: the hint is stale — heal and fall back to
                // the authoritative walk (which re-raises any real error).
                Ok(_)
                | Err(MemError::LineLost { .. })
                | Err(MemError::Stalled { .. })
                | Err(MemError::NotResident { .. }) => {}
                Err(e) => return Err(e),
            }
            self.placement.borrow_mut().remove(name);
        }
        for line in self.chain_for(m, node, name)? {
            // Scan the line's slots inside the coherent read — no image
            // copy is made.
            let hit = m.read_line_with(node, line, |img| {
                for slot in 0..self.geom.lcbs_per_line {
                    let off = self.geom.slot_offset(slot);
                    if let Some(l) =
                        lcb::decode_slot(&self.geom, &img[off..off + self.geom.slot_size()])
                    {
                        if l.name == name {
                            return Some((slot, l));
                        }
                    }
                }
                None
            })?;
            if let Some((slot, l)) = hit {
                self.placement.borrow_mut().insert(name, line, slot);
                return Ok(Some((line, slot, l)));
            }
        }
        Ok(None)
    }

    /// Find the first empty slot in the chain for `name`: returns
    /// `(line, slot index)`, or `None` if every line in the chain is full
    /// (the caller must allocate an overflow line).
    pub fn find_empty_slot(
        &self,
        m: &mut Machine,
        node: NodeId,
        name: u64,
    ) -> Result<Option<(LineId, usize)>, MemError> {
        for line in self.chain_for(m, node, name)? {
            let empty = m.read_line_with(node, line, |img| {
                (0..self.geom.lcbs_per_line).find(|&slot| {
                    let off = self.geom.slot_offset(slot);
                    lcb::decode_slot(&self.geom, &img[off..off + self.geom.slot_size()]).is_none()
                })
            })?;
            if let Some(slot) = empty {
                return Ok(Some((line, slot)));
            }
        }
        Ok(None)
    }

    /// Write `lcb` into `(line, slot)` via a coherent write by `node`.
    /// Allocation-free: encodes into a stack buffer.
    pub fn write_lcb(
        &self,
        m: &mut Machine,
        node: NodeId,
        line: LineId,
        slot: usize,
        lcb_val: &Lcb,
    ) -> Result<(), MemError> {
        let mut buf = [0u8; MAX_SLOT_SIZE];
        let buf = &mut buf[..self.geom.slot_size()];
        lcb::encode_slot(&self.geom, lcb_val, buf);
        m.write(node, line, self.geom.slot_offset(slot), buf)?;
        self.placement.borrow_mut().insert(lcb_val.name, line, slot);
        Ok(())
    }

    /// Clear `(line, slot)` (reclaim the LCB slot).
    pub fn clear_lcb(
        &self,
        m: &mut Machine,
        node: NodeId,
        line: LineId,
        slot: usize,
    ) -> Result<(), MemError> {
        let buf = [0u8; MAX_SLOT_SIZE];
        m.write(node, line, self.geom.slot_offset(slot), &buf[..self.geom.slot_size()])
    }

    /// Allocate and link an overflow line at the end of the chain whose
    /// last line is `tail`. Returns the new line. The *caller* is
    /// responsible for the early-commit protocol (logging a forced
    /// structural record *before* calling, §4.2).
    pub fn alloc_overflow(
        &mut self,
        m: &mut Machine,
        node: NodeId,
        tail: LineId,
    ) -> Result<LineId, MemError> {
        let zero = vec![0u8; self.line_size];
        let new_line = m.alloc_line(node, &zero)?;
        // Link: write the overflow pointer in the tail line.
        let off = self.geom.overflow_offset(self.line_size);
        m.write(node, tail, off, &new_line.0.to_le_bytes())?;
        self.overflow_lines.push((tail, new_line));
        Ok(new_line)
    }

    /// Re-register an overflow link during recovery (the link was replayed
    /// from a structural log record).
    pub fn restore_overflow_registration(&mut self, parent: LineId, line: LineId) {
        if !self.overflow_lines.iter().any(|&(_, l)| l == line) {
            self.overflow_lines.push((parent, line));
        }
    }

    /// Every registered overflow link as `(parent, line)`. The
    /// registration lives in shared memory and survives node crashes, so
    /// recovery can rely on it even when the `LockSpaceAlloc` structural
    /// log record has been reclaimed by checkpoint truncation.
    pub fn overflow_links(&self) -> &[(LineId, LineId)] {
        &self.overflow_lines
    }

    /// Decode every LCB in a raw line image (recovery-time helper).
    pub fn decode_line(&self, img: &[u8]) -> Vec<(usize, Lcb)> {
        let mut out = Vec::new();
        for slot in 0..self.geom.lcbs_per_line {
            let off = self.geom.slot_offset(slot);
            if let Some(l) = lcb::decode_slot(&self.geom, &img[off..off + self.geom.slot_size()]) {
                out.push((slot, l));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcb::LockEntry;
    use crate::mode::LockMode;
    use smdb_sim::{SimConfig, TxnId};

    const N0: NodeId = NodeId(0);
    const BASE: u64 = 1000;

    fn setup() -> (Machine, LockTable) {
        let mut m = Machine::new(SimConfig::new(2));
        let t = LockTable::create(&mut m, N0, BASE, 8, LcbGeometry::co_located()).unwrap();
        (m, t)
    }

    #[test]
    fn bucket_addressing_is_stable_and_in_range() {
        let (_, t) = setup();
        for name in 1..100u64 {
            let b = t.bucket_line(name);
            assert!(b.0 >= BASE && b.0 < BASE + 8);
            assert_eq!(t.bucket_line(name), b, "hash is deterministic");
        }
    }

    #[test]
    fn find_on_empty_table_is_none() {
        let (mut m, t) = setup();
        assert_eq!(t.find(&mut m, N0, 42).unwrap(), None);
    }

    #[test]
    fn write_then_find_round_trips() {
        let (mut m, t) = setup();
        let (line, slot) = t.find_empty_slot(&mut m, N0, 42).unwrap().unwrap();
        let mut l = Lcb::new(42);
        l.holders.push(LockEntry { txn: TxnId::new(N0, 1), mode: LockMode::Exclusive });
        t.write_lcb(&mut m, N0, line, slot, &l).unwrap();
        let (fline, fslot, found) = t.find(&mut m, N0, 42).unwrap().unwrap();
        assert_eq!((fline, fslot), (line, slot));
        assert_eq!(found, l);
    }

    #[test]
    fn clear_reclaims_slot() {
        let (mut m, t) = setup();
        let (line, slot) = t.find_empty_slot(&mut m, N0, 42).unwrap().unwrap();
        t.write_lcb(&mut m, N0, line, slot, &Lcb::new(42)).unwrap();
        t.clear_lcb(&mut m, N0, line, slot).unwrap();
        assert_eq!(t.find(&mut m, N0, 42).unwrap(), None, "stale hint self-heals");
    }

    #[test]
    fn overflow_chain_extends_bucket() {
        let (mut m, mut t) = setup();
        // Fill the bucket for some name with colliding entries.
        let name = 7u64;
        let bucket = t.bucket_line(name);
        // Occupy all slots of the bucket line with other names.
        for slot in 0..t.geometry().lcbs_per_line {
            t.write_lcb(&mut m, N0, bucket, slot, &Lcb::new(1000 + slot as u64)).unwrap();
        }
        assert_eq!(t.find_empty_slot(&mut m, N0, name).unwrap(), None);
        let of = t.alloc_overflow(&mut m, N0, bucket).unwrap();
        assert!(of.0 >= LineId::DYNAMIC_BASE);
        let (line, slot) = t.find_empty_slot(&mut m, N0, name).unwrap().unwrap();
        assert_eq!(line, of);
        t.write_lcb(&mut m, N0, line, slot, &Lcb::new(name)).unwrap();
        let (fline, _, _) = t.find(&mut m, N0, name).unwrap().unwrap();
        assert_eq!(fline, of);
        assert!(t.owns_line(of));
        assert_eq!(t.all_lines().len(), 9);
    }

    #[test]
    fn chain_walk_reports_all_lines() {
        let (mut m, mut t) = setup();
        let name = 9u64;
        let bucket = t.bucket_line(name);
        let of1 = t.alloc_overflow(&mut m, N0, bucket).unwrap();
        let of2 = t.alloc_overflow(&mut m, N0, of1).unwrap();
        assert_eq!(t.chain_for(&mut m, N0, name).unwrap(), vec![bucket, of1, of2]);
    }

    #[test]
    fn placement_cache_hits_verify_and_heal() {
        let (mut m, t) = setup();
        let name = 42u64;
        let (line, slot) = t.find_empty_slot(&mut m, N0, name).unwrap().unwrap();
        t.write_lcb(&mut m, N0, line, slot, &Lcb::new(name)).unwrap();
        assert_eq!(t.placement_len(), 1);
        // Reuse the slot for a different name behind the cache's back.
        t.clear_lcb(&mut m, N0, line, slot).unwrap();
        let other = 1042u64;
        t.write_lcb(&mut m, N0, line, slot, &Lcb::new(other)).unwrap();
        assert_eq!(t.find(&mut m, N0, name).unwrap(), None, "mismatched hint healed");
        let hit = t.find(&mut m, N0, other).unwrap();
        assert!(hit.is_some());
        t.invalidate_placement();
        assert_eq!(t.placement_len(), 0);
        assert!(t.find(&mut m, N0, other).unwrap().is_some(), "walk refills the cache");
        assert_eq!(t.placement_len(), 1);
    }

    #[test]
    fn placement_cache_survives_many_names() {
        // Grow through several doublings and stay coherent.
        let mut cache = PlacementCache::new();
        for i in 1..=500u64 {
            cache.insert(i, LineId(i + 7), (i % 2) as usize);
        }
        for i in 1..=500u64 {
            assert_eq!(cache.get(i), Some((LineId(i + 7), (i % 2) as usize)));
        }
        for i in 1..=250u64 {
            cache.remove(i);
        }
        assert_eq!(cache.len, 250);
        for i in 1..=250u64 {
            assert_eq!(cache.get(i), None);
        }
        // Tombstones are reused by fresh inserts.
        for i in 1..=250u64 {
            cache.insert(i, LineId(i), 0);
        }
        assert_eq!(cache.get(17), Some((LineId(17), 0)));
    }
}
