//! # smdb-lock — shared-memory database locking (*SM locking*, §4.2.2)
//!
//! The paper's lock manager stores **lock control blocks (LCBs) directly in
//! shared memory**; transactions acquire and release locks via ordinary
//! memory operations on those LCBs, eliminating all inter-process
//! communication (in contrast to the message-passing lock managers of
//! shared-disk systems). The price is that lock state becomes subject to
//! the cache-coherence failure effects of §3: when lock information
//! pertaining to two or more transactions is stored in a single cache line,
//! the crash of the node that last touched the line can destroy lock state
//! belonging to transactions on *other* nodes.
//!
//! This crate implements:
//!
//! * LCBs encoded into simulated cache lines ([`LcbGeometry`] controls how
//!   many LCBs share a line, and holder/waiter queue capacities — including
//!   the "LCB spans at most one cache line" layout the paper calls out as
//!   the recovery-friendly choice);
//! * a hash-addressed [`LockTable`] in shared memory with dynamically
//!   allocated overflow lines (a *structural change* that is committed
//!   early, §4.2);
//! * a [`LockManager`] that performs every LCB update inside a line-lock
//!   critical section, writing the logical lock-log record (read locks
//!   included, and queued requests included) to the acquiring node's log
//!   *before* the LCB update becomes visible — the Volatile LBM discipline;
//! * lock-space restart recovery: releasing locks held by crashed
//!   transactions that survive in intact LCBs (undo), and reconstructing
//!   LCBs destroyed by the crash from surviving nodes' lock logs (redo).

mod lcb;
mod manager;
mod mode;
pub mod names;
mod recovery;
pub mod reference;
mod table;
mod violation;

pub use lcb::{
    clear_slot, decode_slot, encode_slot, read_overflow, write_overflow, EntryVec, Lcb,
    LcbGeometry, LockEntry,
};
pub use manager::{LockError, LockManager, LockOutcome, LockStats};
pub use mode::LockMode;
pub use recovery::LockRecoveryStats;
pub use table::LockTable;
pub use violation::{ViolationEdge, ViolationTable};
