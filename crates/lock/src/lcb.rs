//! Lock control blocks and their cache-line encoding.
//!
//! §4.2.2: *"An LCB stores the current mode of the lock, plus two
//! transaction lists, one containing the current holder(s) of the lock,
//! the other containing any transaction(s) waiting for the lock."* LCBs
//! live in shared memory: here they are serialized into simulated cache
//! lines, so the co-location of lock information for many transactions in
//! one line — the root of the recovery problem — is physically real in the
//! simulation.

use crate::mode::LockMode;
use serde::{Deserialize, Serialize};
use smdb_sim::TxnId;

/// One grant or wait entry: the transaction and the mode it holds/requests.
///
/// The transaction id encodes the node id (§4.2.2), which is what lets
/// recovery classify surviving entries by the fate of their node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockEntry {
    /// Holding or waiting transaction.
    pub txn: TxnId,
    /// Granted or requested mode.
    pub mode: LockMode,
}

/// Layout parameters for LCBs within cache lines.
///
/// `lcbs_per_line > 1` co-locates several locks' state in one line — the
/// paper's §3.1 failure scenario. `lcbs_per_line == 1` is the layout the
/// paper recommends for recovery simplicity: *"it may be feasible to ensure
/// that an LCB spans at most one cache line ... a node crash will either
/// destroy all or none of a specific LCB."*
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LcbGeometry {
    /// Maximum concurrent holders encodable per LCB.
    pub max_holders: usize,
    /// Maximum queued waiters encodable per LCB.
    pub max_waiters: usize,
    /// LCB slots per cache line.
    pub lcbs_per_line: usize,
}

/// Bytes per (txn, mode) entry: 8-byte txn id + 1-byte mode.
const ENTRY_SIZE: usize = 9;
/// Per-slot header: 8-byte name + holder count + waiter count.
const SLOT_HEADER: usize = 10;
/// Trailing overflow pointer (line address of the next bucket in the
/// chain; 0 = none).
const OVERFLOW_PTR_SIZE: usize = 8;

impl LcbGeometry {
    /// Default layout: two LCBs per 128-byte line (lock state for several
    /// locks — and thus potentially many transactions — shares a line).
    pub fn co_located() -> Self {
        LcbGeometry { max_holders: 3, max_waiters: 2, lcbs_per_line: 2 }
    }

    /// One LCB per line with larger queues: the recovery-friendly layout.
    pub fn one_per_line() -> Self {
        LcbGeometry { max_holders: 10, max_waiters: 2, lcbs_per_line: 1 }
    }

    /// Serialized size of one LCB slot.
    pub fn slot_size(&self) -> usize {
        SLOT_HEADER + ENTRY_SIZE * (self.max_holders + self.max_waiters)
    }

    /// Bytes required per bucket line.
    pub fn line_bytes_needed(&self) -> usize {
        self.slot_size() * self.lcbs_per_line + OVERFLOW_PTR_SIZE
    }

    /// Whether this geometry fits in `line_size`-byte cache lines.
    pub fn fits(&self, line_size: usize) -> bool {
        self.line_bytes_needed() <= line_size
    }

    /// Byte offset of slot `i` within the bucket line.
    pub fn slot_offset(&self, i: usize) -> usize {
        assert!(i < self.lcbs_per_line);
        i * self.slot_size()
    }

    /// Byte offset of the overflow pointer within the bucket line.
    pub fn overflow_offset(&self, line_size: usize) -> usize {
        line_size - OVERFLOW_PTR_SIZE
    }
}

/// Upper bound on entries an [`EntryVec`] holds inline: the largest
/// holder capacity of any geometry ([`LcbGeometry::one_per_line`]'s 10)
/// plus slack for transient promote states.
pub const MAX_ENTRIES: usize = 12;

const EMPTY_ENTRY: LockEntry = LockEntry { txn: TxnId(0), mode: LockMode::Shared };

/// Fixed-capacity inline entry list: the LCB's holder/waiter arrays
/// without a heap allocation per decode. Capacity is bounded by the line
/// geometry (an LCB that outgrows its slot is rejected with
/// `CapacityExceeded` before it ever reaches this size), so spilling to
/// the heap is never needed.
#[derive(Clone, Copy)]
pub struct EntryVec {
    entries: [LockEntry; MAX_ENTRIES],
    len: u8,
}

impl EntryVec {
    /// An empty list.
    pub const fn new() -> Self {
        EntryVec { entries: [EMPTY_ENTRY; MAX_ENTRIES], len: 0 }
    }

    /// Append an entry. Panics past [`MAX_ENTRIES`] — callers enforce the
    /// (smaller) geometry capacity first.
    pub fn push(&mut self, e: LockEntry) {
        assert!((self.len as usize) < MAX_ENTRIES, "EntryVec overflow");
        self.entries[self.len as usize] = e;
        self.len += 1;
    }

    /// Remove and return the entry at `i`, shifting later entries down
    /// (order-preserving, like `Vec::remove`).
    pub fn remove(&mut self, i: usize) -> LockEntry {
        let n = self.len as usize;
        assert!(i < n, "EntryVec remove out of bounds");
        let e = self.entries[i];
        self.entries.copy_within(i + 1..n, i);
        self.len -= 1;
        e
    }

    /// Keep only entries matching the predicate (order-preserving).
    pub fn retain(&mut self, mut keep: impl FnMut(&LockEntry) -> bool) {
        let mut w = 0usize;
        for r in 0..self.len as usize {
            if keep(&self.entries[r]) {
                self.entries[w] = self.entries[r];
                w += 1;
            }
        }
        self.len = w as u8;
    }
}

impl Default for EntryVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for EntryVec {
    type Target = [LockEntry];
    fn deref(&self) -> &[LockEntry] {
        &self.entries[..self.len as usize]
    }
}

impl std::ops::DerefMut for EntryVec {
    fn deref_mut(&mut self) -> &mut [LockEntry] {
        let n = self.len as usize;
        &mut self.entries[..n]
    }
}

impl PartialEq for EntryVec {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for EntryVec {}

impl std::fmt::Debug for EntryVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a EntryVec {
    type Item = &'a LockEntry;
    type IntoIter = std::slice::Iter<'a, LockEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// In-memory (decoded) view of one lock control block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Lcb {
    /// Lock name (non-zero; 0 marks an empty slot on the wire).
    pub name: u64,
    /// Current holders.
    pub holders: EntryVec,
    /// FIFO wait queue.
    pub waiters: EntryVec,
}

impl Lcb {
    /// A fresh LCB for `name` with no holders or waiters.
    pub fn new(name: u64) -> Self {
        assert!(name != 0, "lock name 0 is reserved for empty slots");
        Lcb { name, holders: EntryVec::new(), waiters: EntryVec::new() }
    }

    /// The current (strongest) granted mode, if any holder exists.
    pub fn current_mode(&self) -> Option<LockMode> {
        self.holders.iter().map(|e| e.mode).max()
    }

    /// Whether a request in `mode` can be granted now: compatible with all
    /// holders, and no conflicting waiter is queued ahead (§4.2.2: *"If the
    /// requested mode is compatible with the mode stored in the LCB, and
    /// there are no conflicting waiters"*).
    pub fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
        let compat_holders = self.holders.iter().all(|e| e.txn == txn || mode.compatible(e.mode));
        let no_conflicting_waiters =
            self.waiters.iter().all(|w| mode.compatible(w.mode) && w.mode.compatible(mode));
        compat_holders && (self.waiters.is_empty() || no_conflicting_waiters)
    }

    /// Whether `txn` already holds the lock (in any mode).
    pub fn holds(&self, txn: TxnId) -> bool {
        self.holders.iter().any(|e| e.txn == txn)
    }

    /// Remove `txn` from holders and waiters. Returns true if anything was
    /// removed.
    pub fn remove(&mut self, txn: TxnId) -> bool {
        let before = self.holders.len() + self.waiters.len();
        self.holders.retain(|e| e.txn != txn);
        self.waiters.retain(|e| e.txn != txn);
        before != self.holders.len() + self.waiters.len()
    }

    /// Grant any waiters that became compatible (FIFO, stopping at the
    /// first incompatible waiter). Returns the promoted entries. A queued
    /// *upgrade* (the waiter already holds the lock in a weaker mode)
    /// strengthens the existing grant rather than duplicating it.
    ///
    /// `max_holders` bounds the holder array: a promotion that would
    /// create a *new* holder entry past the geometry's capacity stops the
    /// FIFO scan (the waiter stays queued for a later release), exactly
    /// like an incompatible waiter. Without the bound, cancelling an
    /// exclusive waiter queued behind a full set of shared holders would
    /// promote a shared waiter into a fourth holder slot and overflow the
    /// encoded LCB. Upgrades never grow the array and are always allowed.
    pub fn promote_waiters(&mut self, max_holders: usize) -> Vec<LockEntry> {
        let mut promoted = Vec::new();
        while let Some(&w) = self.waiters.first() {
            if !self.can_grant_ignoring_waiters(w.txn, w.mode) {
                break;
            }
            let upgrade = self.holders.iter().any(|h| h.txn == w.txn);
            if !upgrade && self.holders.len() >= max_holders {
                break;
            }
            self.waiters.remove(0);
            if let Some(h) = self.holders.iter_mut().find(|h| h.txn == w.txn) {
                h.mode = h.mode.max(w.mode);
            } else {
                self.holders.push(w);
            }
            promoted.push(w);
        }
        promoted
    }

    fn can_grant_ignoring_waiters(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders.iter().all(|e| e.txn == txn || mode.compatible(e.mode))
    }

    /// Whether the LCB carries no state and its slot can be reclaimed.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty() && self.waiters.is_empty()
    }
}

fn encode_entry(buf: &mut [u8], e: &LockEntry) {
    buf[..8].copy_from_slice(&e.txn.0.to_le_bytes());
    buf[8] = e.mode.to_byte();
}

fn decode_entry(buf: &[u8]) -> LockEntry {
    let txn = TxnId(u64::from_le_bytes(buf[..8].try_into().expect("8 bytes")));
    let mode = LockMode::from_byte(buf[8]).expect("valid mode byte in encoded entry");
    LockEntry { txn, mode }
}

/// Encode an LCB into its slot within a bucket line buffer. Panics if the
/// LCB exceeds the geometry's capacities (the manager checks before
/// mutating).
pub fn encode_slot(geom: &LcbGeometry, lcb: &Lcb, slot_buf: &mut [u8]) {
    assert!(lcb.holders.len() <= geom.max_holders, "holder overflow");
    assert!(lcb.waiters.len() <= geom.max_waiters, "waiter overflow");
    slot_buf[..geom.slot_size()].fill(0);
    slot_buf[..8].copy_from_slice(&lcb.name.to_le_bytes());
    slot_buf[8] = lcb.holders.len() as u8;
    slot_buf[9] = lcb.waiters.len() as u8;
    let mut off = SLOT_HEADER;
    for e in &lcb.holders {
        encode_entry(&mut slot_buf[off..off + ENTRY_SIZE], e);
        off += ENTRY_SIZE;
    }
    off = SLOT_HEADER + ENTRY_SIZE * geom.max_holders;
    for e in &lcb.waiters {
        encode_entry(&mut slot_buf[off..off + ENTRY_SIZE], e);
        off += ENTRY_SIZE;
    }
}

/// Clear a slot (empty LCB).
pub fn clear_slot(geom: &LcbGeometry, slot_buf: &mut [u8]) {
    slot_buf[..geom.slot_size()].fill(0);
}

/// Decode the LCB in a slot buffer; `None` if the slot is empty.
pub fn decode_slot(geom: &LcbGeometry, slot_buf: &[u8]) -> Option<Lcb> {
    let name = u64::from_le_bytes(slot_buf[..8].try_into().expect("8 bytes"));
    if name == 0 {
        return None;
    }
    let n_holders = slot_buf[8] as usize;
    let n_waiters = slot_buf[9] as usize;
    let mut lcb = Lcb::new(name);
    let mut off = SLOT_HEADER;
    for _ in 0..n_holders {
        lcb.holders.push(decode_entry(&slot_buf[off..off + ENTRY_SIZE]));
        off += ENTRY_SIZE;
    }
    off = SLOT_HEADER + ENTRY_SIZE * geom.max_holders;
    for _ in 0..n_waiters {
        lcb.waiters.push(decode_entry(&slot_buf[off..off + ENTRY_SIZE]));
        off += ENTRY_SIZE;
    }
    Some(lcb)
}

/// Read the overflow pointer from a bucket line image.
pub fn read_overflow(geom: &LcbGeometry, line: &[u8]) -> u64 {
    let off = geom.overflow_offset(line.len());
    u64::from_le_bytes(line[off..off + 8].try_into().expect("8 bytes"))
}

/// Write the overflow pointer into a bucket line image.
pub fn write_overflow(geom: &LcbGeometry, line: &mut [u8], ptr: u64) {
    let off = geom.overflow_offset(line.len());
    line[off..off + 8].copy_from_slice(&ptr.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::NodeId;

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn geometries_fit_128_byte_lines() {
        assert!(LcbGeometry::co_located().fits(128));
        assert!(LcbGeometry::one_per_line().fits(128));
    }

    #[test]
    fn slot_round_trip() {
        let geom = LcbGeometry::co_located();
        let mut lcb = Lcb::new(0xDEAD);
        lcb.holders.push(LockEntry { txn: t(0, 1), mode: LockMode::Shared });
        lcb.holders.push(LockEntry { txn: t(1, 4), mode: LockMode::Shared });
        lcb.waiters.push(LockEntry { txn: t(2, 9), mode: LockMode::Exclusive });
        let mut buf = vec![0u8; geom.slot_size()];
        encode_slot(&geom, &lcb, &mut buf);
        assert_eq!(decode_slot(&geom, &buf), Some(lcb));
    }

    #[test]
    fn empty_slot_decodes_none() {
        let geom = LcbGeometry::co_located();
        let buf = vec![0u8; geom.slot_size()];
        assert_eq!(decode_slot(&geom, &buf), None);
    }

    #[test]
    fn clear_slot_empties() {
        let geom = LcbGeometry::co_located();
        let mut buf = vec![0u8; geom.slot_size()];
        encode_slot(&geom, &Lcb::new(5), &mut buf);
        assert!(decode_slot(&geom, &buf).is_some());
        clear_slot(&geom, &mut buf);
        assert!(decode_slot(&geom, &buf).is_none());
    }

    #[test]
    fn grant_rules() {
        let mut lcb = Lcb::new(1);
        assert!(lcb.can_grant(t(0, 1), LockMode::Exclusive));
        lcb.holders.push(LockEntry { txn: t(0, 1), mode: LockMode::Shared });
        // Compatible share.
        assert!(lcb.can_grant(t(1, 2), LockMode::Shared));
        // Conflicting exclusive.
        assert!(!lcb.can_grant(t(1, 2), LockMode::Exclusive));
        // A queued exclusive waiter blocks new shares (no starvation).
        lcb.waiters.push(LockEntry { txn: t(2, 3), mode: LockMode::Exclusive });
        assert!(!lcb.can_grant(t(3, 4), LockMode::Shared));
    }

    #[test]
    fn promote_waiters_fifo() {
        let mut lcb = Lcb::new(1);
        lcb.holders.push(LockEntry { txn: t(0, 1), mode: LockMode::Exclusive });
        lcb.waiters.push(LockEntry { txn: t(1, 2), mode: LockMode::Shared });
        lcb.waiters.push(LockEntry { txn: t(2, 3), mode: LockMode::Shared });
        lcb.waiters.push(LockEntry { txn: t(3, 4), mode: LockMode::Exclusive });
        assert!(lcb.promote_waiters(usize::MAX).is_empty(), "holder still present");
        lcb.remove(t(0, 1));
        let promoted = lcb.promote_waiters(usize::MAX);
        assert_eq!(promoted.len(), 2, "both shares promoted, exclusive still waits");
        assert_eq!(lcb.waiters.len(), 1);
        lcb.remove(t(1, 2));
        lcb.remove(t(2, 3));
        assert_eq!(lcb.promote_waiters(usize::MAX).len(), 1);
        assert!(lcb.waiters.is_empty());
    }

    #[test]
    fn promotion_respects_holder_capacity() {
        // Three sharers fill a co_located slot; an exclusive waiter queues,
        // then a fourth sharer queues behind it (no-starvation rule). When
        // the exclusive waiter withdraws, the sharer is compatible but
        // there is no holder slot free: it must stay queued, not overflow.
        let geom = LcbGeometry::co_located();
        let mut lcb = Lcb::new(1);
        for seq in 1..=3 {
            lcb.holders.push(LockEntry { txn: t(seq as u16, seq), mode: LockMode::Shared });
        }
        lcb.waiters.push(LockEntry { txn: t(4, 4), mode: LockMode::Shared });
        assert!(lcb.promote_waiters(geom.max_holders).is_empty(), "no free holder slot");
        assert_eq!(lcb.waiters.len(), 1);
        // A slot frees up: now the promotion goes through.
        lcb.remove(t(1, 1));
        assert_eq!(lcb.promote_waiters(geom.max_holders).len(), 1);
        assert_eq!(lcb.holders.len(), geom.max_holders);
        assert!(lcb.waiters.is_empty());
    }

    #[test]
    fn remove_reports_change() {
        let mut lcb = Lcb::new(1);
        lcb.holders.push(LockEntry { txn: t(0, 1), mode: LockMode::Shared });
        assert!(lcb.remove(t(0, 1)));
        assert!(!lcb.remove(t(0, 1)));
        assert!(lcb.is_empty());
    }

    #[test]
    fn overflow_pointer_round_trip() {
        let geom = LcbGeometry::co_located();
        let mut line = vec![0u8; 128];
        assert_eq!(read_overflow(&geom, &line), 0);
        write_overflow(&geom, &mut line, 0xABCD_EF01);
        assert_eq!(read_overflow(&geom, &line), 0xABCD_EF01);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_name_rejected() {
        let _ = Lcb::new(0);
    }
}

#[cfg(test)]
mod upgrade_tests {
    use super::*;
    use smdb_sim::NodeId;

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn promoting_queued_upgrade_strengthens_in_place() {
        let mut lcb = Lcb::new(1);
        lcb.holders.push(LockEntry { txn: t(0, 1), mode: LockMode::Shared });
        lcb.holders.push(LockEntry { txn: t(1, 2), mode: LockMode::Shared });
        // t(0,1) queues an upgrade to X.
        lcb.waiters.push(LockEntry { txn: t(0, 1), mode: LockMode::Exclusive });
        // The other sharer leaves.
        lcb.remove(t(1, 2));
        let promoted = lcb.promote_waiters(usize::MAX);
        assert_eq!(promoted.len(), 1);
        assert_eq!(lcb.holders.len(), 1, "no duplicate holder entry");
        assert_eq!(lcb.holders[0].mode, LockMode::Exclusive);
        assert!(lcb.waiters.is_empty());
    }
}
