//! # smdb-btree — a shared-memory B+-tree index (§4.2.1)
//!
//! A B+-tree whose nodes are database pages living in the simulated
//! shared memory (and paged against the stable database), so that index
//! operations exhibit exactly the cache-line sharing patterns that drive
//! the paper's recovery problems:
//!
//! * leaf records are co-located many-per-cache-line, so an uncommitted
//!   insert can migrate to another node's cache (§4.2.1);
//! * **non-structural** changes (insert, delete) are recovered with the
//!   record-oriented techniques: logical `IndexInsert`/`IndexDelete` log
//!   records written under the LBM discipline, plus per-entry **undo tags**
//!   (the node id of the updating transaction) stored *in the same cache
//!   line* as the entry;
//! * **deletes are logical** — the entry is marked deleted, so the undo of
//!   a migrated uncommitted delete is effected by merely *unmarking* it
//!   (§4.2.1), and the space is not reused until the deleter commits;
//! * **structural** changes (page splits, root growth) are nested
//!   top-level actions committed early (§4.2): the structural log record is
//!   forced and the affected pages are flushed before the new structure can
//!   be used by any other transaction, so no inter-node abort dependency
//!   can form through it.
//!
//! All byte traffic goes through the coherent [`smdb_sim::Machine`]; pages
//! are faulted from the [`smdb_storage::StableDb`] on first touch and
//! flushed respecting the WAL rule via the shared
//! [`smdb_wal::PageLsnTable`].

mod layout;
mod pageio;
mod recovery;
mod tree;

pub use layout::{BranchRef, LeafEntry, NodeKind, TreeLayout, NULL_TAG, VAL_SIZE};
pub use pageio::{
    LineSpan, TreeCtx, APPEND_BYTES_COUNTER, COALESCED_FORCES_COUNTER, FORCE_RECORDS_HISTOGRAM,
    PHYSICAL_FORCES_COUNTER,
};
pub use recovery::BtreeRecoveryStats;
pub use tree::{BTree, BtreeError, BtreeStats, LeafHit};
