//! B-tree restart-recovery primitives.
//!
//! The engine (smdb-core) orchestrates recovery; this module provides the
//! tree-side mechanics:
//!
//! * **structure recovery** — recompute the root pointer and allocation
//!   high-water mark from the (always forced) structural log records, and
//!   reinstall pages whose lines were destroyed from their stable images
//!   (structural changes flush eagerly, so stable images are structurally
//!   current);
//! * **logical redo** — idempotent re-application of `IndexInsert` /
//!   `IndexDelete` effects for surviving transactions whose updates were
//!   lost with a crashed node's cache;
//! * **undo by tag** — the §4.1.2 sequential scan: every leaf entry tagged
//!   with a crashed node is a *candidate* for undo; the engine-supplied
//!   `is_committed` predicate (computed from the crashed nodes' *stable*
//!   logs) filters out entries whose tagging transaction had committed but
//!   whose tag-clear was lost.

use crate::layout::{LeafEntry, NodeKind, NULL_TAG, VAL_SIZE};
use crate::pageio::TreeCtx;
use crate::tree::{BTree, BtreeError};
use serde::{Deserialize, Serialize};
use smdb_sim::{NodeId, TxnId};
use smdb_storage::PageId;
use smdb_wal::{LogPayload, StructuralKind};
use std::collections::BTreeSet;

/// Counters from one B-tree recovery pass.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtreeRecoveryStats {
    /// Pages reinstalled from stable images.
    pub pages_reinstalled: u64,
    /// Structural log records replayed for root/allocation recovery.
    pub structural_replays: u64,
    /// Redo: inserts re-applied.
    pub redo_inserts: u64,
    /// Redo: delete marks re-applied.
    pub redo_deletes: u64,
    /// Undo: uncommitted inserts removed.
    pub undo_inserts: u64,
    /// Undo: uncommitted delete marks removed.
    pub undo_deletes: u64,
    /// Stale tags cleared (tagging transaction had committed).
    pub tags_cleared: u64,
}

impl BTree {
    /// Phase 1 of tree recovery: restore the structural skeleton.
    ///
    /// Re-derives the root page and the allocation high-water mark from
    /// structural log records (stable prefixes for crashed nodes, full logs
    /// for survivors — structural records are always forced before use, so
    /// the stable prefixes suffice), then reinstalls from stable storage
    /// every tree page with lost lines.
    pub fn recover_structure(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        recovery_node: NodeId,
    ) -> Result<(BtreeRecoveryStats, Vec<PageId>), BtreeError> {
        let mut stats = BtreeRecoveryStats::default();
        let mut reinstalled = Vec::new();
        let (first_page, _max) = self.page_range();
        let mut root = PageId(first_page);
        let mut high_water = self.allocated_pages().last().copied().unwrap_or(PageId(first_page));
        for node in ctx.m.node_ids().collect::<Vec<_>>() {
            let recs: Vec<LogPayload> = if ctx.m.is_crashed(node) {
                ctx.logs.log(node).stable_records().iter().map(|r| r.payload.clone()).collect()
            } else {
                ctx.logs.log(node).records().iter().map(|r| r.payload.clone()).collect()
            };
            for p in recs {
                if let LogPayload::Structural { kind, .. } = p {
                    match kind {
                        StructuralKind::BtreeNewRoot { root_page } => {
                            stats.structural_replays += 1;
                            // Later roots supersede earlier ones; root pages
                            // are allocated in increasing order.
                            if root_page >= root.0 {
                                root = PageId(root_page);
                            }
                            high_water = high_water.max(PageId(root_page));
                        }
                        StructuralKind::BtreeSplit { new_page, old_page, .. } => {
                            stats.structural_replays += 1;
                            high_water = high_water.max(PageId(new_page)).max(PageId(old_page));
                        }
                        StructuralKind::LockSpaceAlloc { .. } => {}
                    }
                }
            }
        }
        self.set_root(root);
        self.set_next_page(high_water.0 + 1);
        // Reinstall any page with destroyed lines from its stable image.
        for page in self.allocated_pages() {
            if ctx.page_has_lost_lines(page) || !ctx.page_cached_anywhere(page) {
                ctx.install_page_from_stable(recovery_node, page)?;
                stats.pages_reinstalled += 1;
                reinstalled.push(page);
            }
        }
        Ok((stats, reinstalled))
    }

    /// Redo-All support: discard every cached tree line on every node and
    /// reinstall all pages from stable images. Returns pages reinstalled.
    pub fn discard_and_reload_all(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        recovery_node: NodeId,
    ) -> Result<u64, BtreeError> {
        let mut n = 0;
        for page in self.allocated_pages() {
            ctx.evict_page(page);
            ctx.install_page_from_stable(recovery_node, page)?;
            n += 1;
        }
        Ok(n)
    }

    /// Idempotent redo of an insert: ensure a (possibly tagged) entry for
    /// `key` exists with `value`. Used when the insert's effect was lost
    /// with a crashed cache but the inserting transaction survives (or
    /// committed). Tags the entry with `tag` (pass [`NULL_TAG`] for
    /// committed transactions).
    pub fn redo_insert(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        key: u64,
        value: [u8; VAL_SIZE],
        tag: u16,
    ) -> Result<bool, BtreeError> {
        if self.search_any(ctx, node, key)?.is_some() {
            return Ok(false); // effect already present
        }
        self.raw_insert(ctx, node, key, value, tag, false)?;
        Ok(true)
    }

    /// Idempotent redo of a logical delete: ensure the entry for `key` is
    /// delete-marked with `tag`. Re-creates a marked entry if the entry
    /// itself was lost.
    pub fn redo_delete_mark(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        key: u64,
        value: [u8; VAL_SIZE],
        tag: u16,
    ) -> Result<bool, BtreeError> {
        match self.search_any(ctx, node, key)? {
            Some(hit) if hit.entry.deleted => Ok(false),
            Some(hit) => {
                let mut e = hit.entry;
                e.deleted = true;
                e.tag = tag;
                self.rewrite_entry(ctx, node, hit.page, hit.idx, &e)?;
                Ok(true)
            }
            None => {
                self.raw_insert(ctx, node, key, value, tag, true)?;
                Ok(true)
            }
        }
    }

    /// The §4.1.2 undo scan over the index: every entry tagged with a
    /// crashed node is a candidate; `is_committed(tag_node, key)` (derived
    /// by the engine from the crashed nodes' stable logs) decides whether
    /// the tagging transaction committed. Committed → clear the stale tag;
    /// uncommitted → undo (remove inserts, unmark deletes).
    pub fn undo_by_tags(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        recovery_node: NodeId,
        crashed: &BTreeSet<NodeId>,
        reinstalled: &BTreeSet<PageId>,
        mut is_committed: impl FnMut(NodeId, u64) -> bool,
    ) -> Result<BtreeRecoveryStats, BtreeError> {
        let mut stats = BtreeRecoveryStats::default();
        let mut page = Some(self.first_leaf());
        while let Some(p) = page {
            let img = ctx.read_page_image(recovery_node, p)?;
            debug_assert_eq!(self.layout().kind(&img), Some(NodeKind::Leaf));
            page = self.layout().next_leaf(&img);
            // Collect candidate entries first; mutating shifts indices.
            let candidates: Vec<LeafEntry> = self
                .layout()
                .leaf_entries(&img)
                .into_iter()
                .filter(|e| e.tag != NULL_TAG && crashed.contains(&NodeId(e.tag)))
                .collect();
            for e in candidates {
                // Entries on pages whose surviving cached copies are
                // coherent carry tags only for genuinely uncommitted
                // updates (commits clear tags synchronously); stale
                // committed tags can only come from reinstalled stale
                // stable images, where the predicate decides.
                if reinstalled.contains(&p) && is_committed(NodeId(e.tag), e.key) {
                    // Tag-clear was lost with the crash; the update itself
                    // is committed. Just scrub the tag (keeping the mark if
                    // it was a committed delete).
                    if let Some(hit) = self.search_any(ctx, recovery_node, e.key)? {
                        if hit.entry.tag == e.tag {
                            let mut fixed = hit.entry;
                            fixed.tag = NULL_TAG;
                            self.rewrite_entry(ctx, recovery_node, hit.page, hit.idx, &fixed)?;
                            stats.tags_cleared += 1;
                        }
                    }
                } else if e.deleted {
                    self.undo_delete(ctx, recovery_node, e.key)?;
                    stats.undo_deletes += 1;
                } else {
                    self.undo_insert(ctx, recovery_node, e.key)?;
                    stats.undo_inserts += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Insert an entry physically with explicit tag/mark, *without* writing
    /// an `IndexInsert` record (recovery-side redo; the original logical
    /// record already exists). Splits encountered on the way are still
    /// logged and early-committed (they are new structural changes).
    fn raw_insert(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        key: u64,
        value: [u8; VAL_SIZE],
        tag: u16,
        deleted: bool,
    ) -> Result<(), BtreeError> {
        // Reuse the public insert path with a synthetic recovery
        // transaction for structural logging, then fix up the entry.
        let recovery_txn = TxnId::new(node, 0);
        match self.insert(ctx, recovery_txn, key, value) {
            Ok(()) => {}
            Err(BtreeError::DuplicateKey { .. }) => {}
            Err(e) => return Err(e),
        }
        // Strip the synthetic IndexInsert record? The log append is
        // harmless (it belongs to seq-0, never treated as a real
        // transaction), but we avoid the noise by rewriting the entry's
        // metadata only.
        if let Some(hit) = self.search_any(ctx, node, key)? {
            let mut e = hit.entry;
            e.tag = tag;
            e.deleted = deleted;
            e.value = value;
            self.rewrite_entry(ctx, node, hit.page, hit.idx, &e)?;
        }
        Ok(())
    }

    fn rewrite_entry(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        page: PageId,
        idx: usize,
        e: &LeafEntry,
    ) -> Result<(), BtreeError> {
        let mut scratch = vec![0u8; self.layout().page_size];
        self.layout().set_leaf_entry(&mut scratch, idx, e);
        let (s, t) = self.layout().leaf_entry_range(idx);
        let span = scratch[s..t].to_vec();
        ctx.write(node, page, s, &span)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::{Machine, SimConfig};
    use smdb_storage::{PageGeometry, StableDb};
    use smdb_wal::{LbmMode, LogSet, PageLsnTable};

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    struct Owned {
        m: Machine,
        db: StableDb,
        logs: LogSet,
        plt: PageLsnTable,
        gsn: u64,
    }

    fn setup() -> Owned {
        let m = Machine::new(SimConfig::new(3));
        let mut db = StableDb::new(PageGeometry::new(128, 8));
        db.format(64);
        Owned { m, db, logs: LogSet::new(3), plt: PageLsnTable::new(), gsn: 0 }
    }

    macro_rules! ctx {
        ($o:expr) => {
            TreeCtx::new(
                &mut $o.m,
                &mut $o.db,
                &mut $o.logs,
                &mut $o.plt,
                LbmMode::Volatile,
                &mut $o.gsn,
            )
        };
    }

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    fn val(x: u64) -> [u8; VAL_SIZE] {
        x.to_le_bytes()
    }

    #[test]
    fn structure_recovered_after_split_owner_crashes() {
        let mut o = setup();
        let mut tree = {
            let mut c = ctx!(o);
            let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
            for i in 0..200u64 {
                tree.insert(&mut c, t(0, i + 1), i, val(i)).unwrap();
            }
            assert!(tree.stats().root_grows >= 1);
            tree
        };
        let root_before = tree.root();
        let pages_before = tree.allocated_pages();
        o.m.crash(&[N0]);
        o.logs.crash(&[N0]);
        let mut c = ctx!(o);
        let (st, _reinstalled) = tree.recover_structure(&mut c, N1).unwrap();
        assert_eq!(tree.root(), root_before, "root recomputed from structural records");
        assert_eq!(tree.allocated_pages(), pages_before, "allocation high-water recomputed");
        assert!(st.pages_reinstalled > 0, "lost pages reinstalled from stable");
        tree.check_invariants(&mut c, N1).unwrap();
    }

    #[test]
    fn redo_insert_is_idempotent() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        assert!(tree.redo_insert(&mut c, N1, 5, val(50), 1).unwrap());
        assert!(!tree.redo_insert(&mut c, N1, 5, val(50), 1).unwrap());
        let hit = tree.search(&mut c, N1, 5).unwrap().unwrap();
        assert_eq!(hit.entry.tag, 1);
    }

    #[test]
    fn redo_delete_mark_recreates_missing_entry_marked() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        assert!(tree.redo_delete_mark(&mut c, N1, 5, val(50), 1).unwrap());
        let hit = tree.search_any(&mut c, N1, 5).unwrap().unwrap();
        assert!(hit.entry.deleted);
        assert!(tree.search(&mut c, N1, 5).unwrap().is_none());
        assert!(!tree.redo_delete_mark(&mut c, N1, 5, val(50), 1).unwrap());
    }

    #[test]
    fn undo_by_tags_removes_uncommitted_inserts() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        // n0: committed insert (tag cleared at commit); n1: active insert.
        let t0 = t(0, 1);
        tree.insert(&mut c, t0, 1, val(10)).unwrap();
        tree.commit_key(&mut c, t0, 1).unwrap();
        tree.insert(&mut c, t(1, 1), 2, val(20)).unwrap();
        // n1 crashes with its insert still tagged.
        let crashed: BTreeSet<NodeId> = [N1].into_iter().collect();
        let none: BTreeSet<PageId> = BTreeSet::new();
        let st = tree.undo_by_tags(&mut c, N0, &crashed, &none, |_, _| false).unwrap();
        assert_eq!(st.undo_inserts, 1);
        assert!(tree.search_any(&mut c, N0, 2).unwrap().is_none());
        assert!(tree.search(&mut c, N0, 1).unwrap().is_some(), "committed entry untouched");
    }

    #[test]
    fn undo_by_tags_unmarks_uncommitted_deletes() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        let t0 = t(0, 1);
        tree.insert(&mut c, t0, 1, val(10)).unwrap();
        tree.commit_key(&mut c, t0, 1).unwrap();
        tree.delete(&mut c, t(1, 1), 1).unwrap();
        let crashed: BTreeSet<NodeId> = [N1].into_iter().collect();
        let none: BTreeSet<PageId> = BTreeSet::new();
        let st = tree.undo_by_tags(&mut c, N0, &crashed, &none, |_, _| false).unwrap();
        assert_eq!(st.undo_deletes, 1);
        let hit = tree.search(&mut c, N0, 1).unwrap().unwrap();
        assert_eq!(hit.entry.value, val(10));
        assert_eq!(hit.entry.tag, NULL_TAG);
    }

    #[test]
    fn undo_by_tags_spares_committed_with_stale_tag() {
        // The tag-clear of a committed insert was lost with the line; the
        // is_committed predicate must prevent the undo.
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        tree.insert(&mut c, t(1, 1), 3, val(30)).unwrap(); // tagged n1, "committed" per predicate
        let crashed: BTreeSet<NodeId> = [N1].into_iter().collect();
        // Model the page as a reinstalled stale image so the committed
        // predicate is consulted.
        let all: BTreeSet<PageId> = tree.allocated_pages().into_iter().collect();
        let st = tree.undo_by_tags(&mut c, N0, &crashed, &all, |_, _| true).unwrap();
        assert_eq!(st.tags_cleared, 1);
        assert_eq!(st.undo_inserts, 0);
        let hit = tree.search(&mut c, N0, 3).unwrap().unwrap();
        assert_eq!(hit.entry.tag, NULL_TAG);
    }

    #[test]
    fn discard_and_reload_restores_flushed_state() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        let txn = t(0, 1);
        tree.insert(&mut c, txn, 9, val(90)).unwrap();
        tree.commit_key(&mut c, txn, 9).unwrap();
        // Flush everything, then discard all caches (Redo-All step 1).
        for p in tree.allocated_pages() {
            c.flush_page(N0, p).unwrap();
        }
        let n = tree.discard_and_reload_all(&mut c, N1).unwrap();
        assert!(n >= 1);
        let hit = tree.search(&mut c, N1, 9).unwrap().unwrap();
        assert_eq!(hit.entry.value, val(90));
    }
}
