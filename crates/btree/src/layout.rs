//! On-page layout of B+-tree nodes.
//!
//! Every tree node occupies one database page. Byte 0..8 is the Page-LSN
//! (the §6 convention — it lives in the first cache line of the page);
//! a small node header follows; fixed-size entries after that. Leaf entries
//! deliberately pack key, **undo tag**, **delete mark**, and value into one
//! contiguous span so that all of them share a cache line with the entry —
//! the §4.1.2 Tagging Rule ("the node ID is stored in the *same cache line*
//! as the active data object") and the §4.2.1 logical-delete property (a
//! migrating line containing an uncommitted delete also contains the
//! original record) hold physically.

use smdb_storage::{PageId, PAGE_DATA_OFFSET};

/// Value payload size for leaf entries, bytes.
pub const VAL_SIZE: usize = 8;
/// The null undo tag: the entry carries no uncommitted update.
pub const NULL_TAG: u16 = u16::MAX;
/// "No next leaf" sentinel in the leaf chain.
pub const NO_PAGE: u32 = u32::MAX;

/// Size of one leaf entry: key (8) + tag (2) + flags (1) + value.
pub const LEAF_ENTRY_SIZE: usize = 8 + 2 + 1 + VAL_SIZE;
/// Size of one branch entry: separator key (8) + child page (4).
pub const BRANCH_ENTRY_SIZE: usize = 8 + 4;

/// Node kind tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Leaf node: holds records.
    Leaf,
    /// Branch (internal) node: holds separator keys and child pointers.
    Branch,
}

impl NodeKind {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            NodeKind::Leaf => 1,
            NodeKind::Branch => 2,
        }
    }

    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Option<NodeKind> {
        match b {
            1 => Some(NodeKind::Leaf),
            2 => Some(NodeKind::Branch),
            _ => None,
        }
    }
}

/// One decoded leaf entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafEntry {
    /// The key.
    pub key: u64,
    /// Undo tag: the node id of the transaction with an uncommitted update
    /// to this entry, or [`NULL_TAG`].
    pub tag: u16,
    /// Logical delete mark (§4.2.1).
    pub deleted: bool,
    /// The value payload.
    pub value: [u8; VAL_SIZE],
}

/// One decoded branch reference: children with keys ≥ `key` live under
/// `child` (until the next separator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchRef {
    /// Separator key.
    pub key: u64,
    /// Child page.
    pub child: PageId,
}

/// Byte-offset calculator for tree pages of a given size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeLayout {
    /// Page size in bytes.
    pub page_size: usize,
}

// Header offsets (all relative to page start).
const KIND_OFF: usize = PAGE_DATA_OFFSET; // 1 byte
const NENTRIES_OFF: usize = PAGE_DATA_OFFSET + 1; // u16
const NEXT_LEAF_OFF: usize = PAGE_DATA_OFFSET + 3; // u32 (leaf only)
const LEFT_CHILD_OFF: usize = PAGE_DATA_OFFSET + 7; // u32 (branch only)
const ENTRIES_OFF: usize = PAGE_DATA_OFFSET + 12;

impl TreeLayout {
    /// Layout for `page_size`-byte pages.
    pub fn new(page_size: usize) -> Self {
        let l = TreeLayout { page_size };
        assert!(l.leaf_capacity() >= 4, "page too small for a useful leaf");
        assert!(l.branch_capacity() >= 4, "page too small for a useful branch");
        l
    }

    /// Offset of the header region (for dirty-range writes).
    pub fn header_range(&self) -> (usize, usize) {
        (KIND_OFF, ENTRIES_OFF)
    }

    /// Maximum leaf entries per node.
    pub fn leaf_capacity(&self) -> usize {
        (self.page_size - ENTRIES_OFF) / LEAF_ENTRY_SIZE
    }

    /// Maximum branch entries per node (in addition to the leftmost
    /// child).
    pub fn branch_capacity(&self) -> usize {
        (self.page_size - ENTRIES_OFF) / BRANCH_ENTRY_SIZE
    }

    /// Byte range of leaf entry `i`.
    pub fn leaf_entry_range(&self, i: usize) -> (usize, usize) {
        let start = ENTRIES_OFF + i * LEAF_ENTRY_SIZE;
        (start, start + LEAF_ENTRY_SIZE)
    }

    /// Byte range of branch entry `i`.
    pub fn branch_entry_range(&self, i: usize) -> (usize, usize) {
        let start = ENTRIES_OFF + i * BRANCH_ENTRY_SIZE;
        (start, start + BRANCH_ENTRY_SIZE)
    }

    // ---- header accessors over a page image ----

    /// Node kind stored in the image (`None` for an unformatted page).
    pub fn kind(&self, img: &[u8]) -> Option<NodeKind> {
        NodeKind::from_byte(img[KIND_OFF])
    }

    /// Set the node kind.
    pub fn set_kind(&self, img: &mut [u8], k: NodeKind) {
        img[KIND_OFF] = k.to_byte();
    }

    /// Entry count.
    pub fn n_entries(&self, img: &[u8]) -> usize {
        u16::from_le_bytes(img[NENTRIES_OFF..NENTRIES_OFF + 2].try_into().expect("u16")) as usize
    }

    /// Set the entry count.
    pub fn set_n_entries(&self, img: &mut [u8], n: usize) {
        img[NENTRIES_OFF..NENTRIES_OFF + 2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    /// Next leaf in the chain, if any.
    pub fn next_leaf(&self, img: &[u8]) -> Option<PageId> {
        let v = u32::from_le_bytes(img[NEXT_LEAF_OFF..NEXT_LEAF_OFF + 4].try_into().expect("u32"));
        if v == NO_PAGE {
            None
        } else {
            Some(PageId(v))
        }
    }

    /// Set the next-leaf pointer.
    pub fn set_next_leaf(&self, img: &mut [u8], next: Option<PageId>) {
        let v = next.map(|p| p.0).unwrap_or(NO_PAGE);
        img[NEXT_LEAF_OFF..NEXT_LEAF_OFF + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Leftmost child of a branch node.
    pub fn left_child(&self, img: &[u8]) -> PageId {
        PageId(u32::from_le_bytes(img[LEFT_CHILD_OFF..LEFT_CHILD_OFF + 4].try_into().expect("u32")))
    }

    /// Set the leftmost child.
    pub fn set_left_child(&self, img: &mut [u8], child: PageId) {
        img[LEFT_CHILD_OFF..LEFT_CHILD_OFF + 4].copy_from_slice(&child.0.to_le_bytes());
    }

    /// Format an image as an empty node of the given kind.
    pub fn format(&self, img: &mut [u8], kind: NodeKind) {
        img[PAGE_DATA_OFFSET..].fill(0);
        self.set_kind(img, kind);
        self.set_n_entries(img, 0);
        if kind == NodeKind::Leaf {
            self.set_next_leaf(img, None);
        }
    }

    // ---- entry accessors ----

    /// Decode leaf entry `i`.
    pub fn leaf_entry(&self, img: &[u8], i: usize) -> LeafEntry {
        let (s, _) = self.leaf_entry_range(i);
        let key = u64::from_le_bytes(img[s..s + 8].try_into().expect("u64"));
        let tag = u16::from_le_bytes(img[s + 8..s + 10].try_into().expect("u16"));
        let deleted = img[s + 10] & 1 != 0;
        let mut value = [0u8; VAL_SIZE];
        value.copy_from_slice(&img[s + 11..s + 11 + VAL_SIZE]);
        LeafEntry { key, tag, deleted, value }
    }

    /// Encode leaf entry `i`.
    pub fn set_leaf_entry(&self, img: &mut [u8], i: usize, e: &LeafEntry) {
        let (s, _) = self.leaf_entry_range(i);
        img[s..s + 8].copy_from_slice(&e.key.to_le_bytes());
        img[s + 8..s + 10].copy_from_slice(&e.tag.to_le_bytes());
        img[s + 10] = e.deleted as u8;
        img[s + 11..s + 11 + VAL_SIZE].copy_from_slice(&e.value);
    }

    /// Decode branch entry `i`.
    pub fn branch_ref(&self, img: &[u8], i: usize) -> BranchRef {
        let (s, _) = self.branch_entry_range(i);
        let key = u64::from_le_bytes(img[s..s + 8].try_into().expect("u64"));
        let child = PageId(u32::from_le_bytes(img[s + 8..s + 12].try_into().expect("u32")));
        BranchRef { key, child }
    }

    /// Encode branch entry `i`.
    pub fn set_branch_ref(&self, img: &mut [u8], i: usize, r: &BranchRef) {
        let (s, _) = self.branch_entry_range(i);
        img[s..s + 8].copy_from_slice(&r.key.to_le_bytes());
        img[s + 8..s + 12].copy_from_slice(&r.child.0.to_le_bytes());
    }

    /// All leaf entries of a leaf image.
    pub fn leaf_entries(&self, img: &[u8]) -> Vec<LeafEntry> {
        (0..self.n_entries(img)).map(|i| self.leaf_entry(img, i)).collect()
    }

    /// All branch refs of a branch image.
    pub fn branch_refs(&self, img: &[u8]) -> Vec<BranchRef> {
        (0..self.n_entries(img)).map(|i| self.branch_ref(img, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> TreeLayout {
        TreeLayout::new(1024)
    }

    #[test]
    fn capacities_are_sane() {
        let l = layout();
        assert_eq!(l.leaf_capacity(), (1024 - 20) / 19);
        assert_eq!(l.branch_capacity(), (1024 - 20) / 12);
    }

    #[test]
    fn leaf_entry_round_trip() {
        let l = layout();
        let mut img = vec![0u8; 1024];
        l.format(&mut img, NodeKind::Leaf);
        let e = LeafEntry { key: 0xFEED, tag: 3, deleted: true, value: *b"eightby!" };
        l.set_leaf_entry(&mut img, 5, &e);
        assert_eq!(l.leaf_entry(&img, 5), e);
    }

    #[test]
    fn branch_ref_round_trip() {
        let l = layout();
        let mut img = vec![0u8; 1024];
        l.format(&mut img, NodeKind::Branch);
        l.set_left_child(&mut img, PageId(9));
        let r = BranchRef { key: 77, child: PageId(13) };
        l.set_branch_ref(&mut img, 0, &r);
        assert_eq!(l.branch_ref(&img, 0), r);
        assert_eq!(l.left_child(&img), PageId(9));
    }

    #[test]
    fn header_round_trip() {
        let l = layout();
        let mut img = vec![0u8; 1024];
        l.format(&mut img, NodeKind::Leaf);
        assert_eq!(l.kind(&img), Some(NodeKind::Leaf));
        assert_eq!(l.n_entries(&img), 0);
        assert_eq!(l.next_leaf(&img), None);
        l.set_n_entries(&mut img, 7);
        l.set_next_leaf(&mut img, Some(PageId(3)));
        assert_eq!(l.n_entries(&img), 7);
        assert_eq!(l.next_leaf(&img), Some(PageId(3)));
    }

    #[test]
    fn unformatted_page_has_no_kind() {
        let l = layout();
        let img = vec![0u8; 1024];
        assert_eq!(l.kind(&img), None);
    }

    #[test]
    fn format_clears_stale_entries() {
        let l = layout();
        let mut img = vec![0xFFu8; 1024];
        l.format(&mut img, NodeKind::Leaf);
        assert_eq!(l.n_entries(&img), 0);
        assert_eq!(l.next_leaf(&img), None);
    }

    #[test]
    fn entries_do_not_clobber_header() {
        let l = layout();
        let mut img = vec![0u8; 1024];
        l.format(&mut img, NodeKind::Leaf);
        l.set_n_entries(&mut img, 1);
        let e = LeafEntry { key: 1, tag: NULL_TAG, deleted: false, value: [0; VAL_SIZE] };
        l.set_leaf_entry(&mut img, 0, &e);
        assert_eq!(l.kind(&img), Some(NodeKind::Leaf));
        assert_eq!(l.n_entries(&img), 1);
    }
}
