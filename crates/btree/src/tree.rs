//! B+-tree algorithms: search, insert (with early-committed splits),
//! logical delete, commit/abort processing.

use crate::layout::{
    BranchRef, LeafEntry, NodeKind, TreeLayout, LEAF_ENTRY_SIZE, NULL_TAG, VAL_SIZE,
};
use crate::pageio::TreeCtx;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use smdb_sim::{MemError, NodeId, TxnId};
use smdb_storage::PageId;
use smdb_wal::{LogPayload, StructuralKind};
use std::fmt;

/// B-tree operation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BtreeError {
    /// Underlying memory error.
    Mem(MemError),
    /// Insert of a key that already has a live entry.
    DuplicateKey {
        /// The duplicate key.
        key: u64,
    },
    /// Delete/lookup of a key with no live entry.
    KeyNotFound {
        /// The missing key.
        key: u64,
    },
    /// The page budget given to the tree is exhausted.
    TreeFull,
    /// The entry is already carrying another node's uncommitted update —
    /// the record-lock layer should have prevented this.
    ConcurrentUpdate {
        /// The contested key.
        key: u64,
        /// The tag found on the entry.
        tag: u16,
    },
    /// A tree page that should exist in the stable database is missing —
    /// the durable store is corrupt or the caller asked for a page that
    /// was never created. Previously a panic deep in the page-I/O layer;
    /// surfaced as a typed error so a crashed recovery can report it.
    StablePageMissing {
        /// The missing page.
        page: PageId,
    },
}

impl From<MemError> for BtreeError {
    fn from(e: MemError) -> Self {
        BtreeError::Mem(e)
    }
}

impl fmt::Display for BtreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtreeError::Mem(e) => write!(f, "memory error: {e}"),
            BtreeError::DuplicateKey { key } => write!(f, "duplicate key {key}"),
            BtreeError::KeyNotFound { key } => write!(f, "key {key} not found"),
            BtreeError::TreeFull => write!(f, "tree page budget exhausted"),
            BtreeError::ConcurrentUpdate { key, tag } => {
                write!(f, "key {key} carries uncommitted update tagged n{tag}")
            }
            BtreeError::StablePageMissing { page } => {
                write!(f, "tree page {page} missing from stable db")
            }
        }
    }
}

impl std::error::Error for BtreeError {}

/// Tree operation counters.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtreeStats {
    /// Successful inserts.
    pub inserts: u64,
    /// Successful logical deletes.
    pub deletes: u64,
    /// Searches performed.
    pub searches: u64,
    /// Leaf/branch splits (early-committed structural changes).
    pub splits: u64,
    /// Root growths (early-committed structural changes).
    pub root_grows: u64,
}

/// Result of a successful leaf lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafHit {
    /// The leaf page holding the entry.
    pub page: PageId,
    /// Entry index within the leaf.
    pub idx: usize,
    /// The decoded entry.
    pub entry: LeafEntry,
}

/// The shared-memory B+-tree.
///
/// `root` and `next_page` are volatile bookkeeping: every change to them is
/// recorded in a *forced* structural log record (early commit, §4.2), so
/// the recovery module can re-derive them from the stable logs after any
/// crash.
#[derive(Clone, Debug)]
pub struct BTree {
    layout: TreeLayout,
    root: PageId,
    first_page: u32,
    next_page: u32,
    max_pages: u32,
    stats: BtreeStats,
}

impl BTree {
    /// Create a new tree whose pages are drawn from
    /// `[first_page, first_page + max_pages)`. The initial root is an empty
    /// leaf at `first_page`.
    pub fn create(
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        first_page: u32,
        max_pages: u32,
    ) -> Result<BTree, BtreeError> {
        assert!(max_pages >= 1);
        let layout = TreeLayout::new(ctx.geometry().page_size());
        let root = PageId(first_page);
        ctx.create_zero_page(node, root)?;
        let mut img = vec![0u8; layout.page_size];
        layout.format(&mut img, NodeKind::Leaf);
        let (h0, h1) = layout.header_range();
        ctx.write(node, root, h0, &img[h0..h1])?;
        // Creation is a structural change: make the formatted root durable
        // immediately, so a reinstall from stable always yields a valid
        // (empty) leaf.
        ctx.flush_page(node, root)?;
        Ok(BTree {
            layout,
            root,
            first_page,
            next_page: first_page + 1,
            max_pages,
            stats: BtreeStats::default(),
        })
    }

    /// The on-page layout.
    pub fn layout(&self) -> &TreeLayout {
        &self.layout
    }

    /// Current root page.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// First page of the tree's range: also the leftmost leaf (splits only
    /// ever move keys rightward).
    pub fn first_leaf(&self) -> PageId {
        PageId(self.first_page)
    }

    /// Pages allocated so far, in allocation order.
    pub fn allocated_pages(&self) -> Vec<PageId> {
        (self.first_page..self.next_page).map(PageId).collect()
    }

    /// Operation counters.
    pub fn stats(&self) -> &BtreeStats {
        &self.stats
    }

    pub(crate) fn set_root(&mut self, root: PageId) {
        self.root = root;
    }

    pub(crate) fn set_next_page(&mut self, next: u32) {
        self.next_page = next;
    }

    pub(crate) fn page_range(&self) -> (u32, u32) {
        (self.first_page, self.max_pages)
    }

    fn alloc_page(&mut self) -> Result<PageId, BtreeError> {
        if self.next_page >= self.first_page + self.max_pages {
            return Err(BtreeError::TreeFull);
        }
        let p = PageId(self.next_page);
        self.next_page += 1;
        Ok(p)
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Child of a branch image for `key`.
    fn child_for(&self, img: &[u8], key: u64) -> PageId {
        let n = self.layout.n_entries(img);
        let mut child = self.layout.left_child(img);
        for i in 0..n {
            let r = self.layout.branch_ref(img, i);
            if key >= r.key {
                child = r.child;
            } else {
                break;
            }
        }
        child
    }

    /// Descend to the leaf that should hold `key`.
    fn descend(&self, ctx: &mut TreeCtx<'_>, node: NodeId, key: u64) -> Result<PageId, BtreeError> {
        let mut page = self.root;
        loop {
            let img = ctx.read_page_image(node, page)?;
            match self.layout.kind(&img) {
                Some(NodeKind::Leaf) => return Ok(page),
                Some(NodeKind::Branch) => page = self.child_for(&img, key),
                None => panic!("unformatted page {page} reached during descent"),
            }
        }
    }

    /// Find the *live* entry for `key` (present and not delete-marked).
    pub fn search(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        key: u64,
    ) -> Result<Option<LeafHit>, BtreeError> {
        self.stats.searches += 1;
        let leaf = self.descend(ctx, node, key)?;
        let img = ctx.read_page_image(node, leaf)?;
        Ok(self.find_in_leaf(&img, leaf, key, false))
    }

    /// Find any entry for `key`, including delete-marked ones (recovery and
    /// engine-internal use).
    pub fn search_any(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        key: u64,
    ) -> Result<Option<LeafHit>, BtreeError> {
        let leaf = self.descend(ctx, node, key)?;
        let img = ctx.read_page_image(node, leaf)?;
        Ok(self.find_in_leaf(&img, leaf, key, true))
    }

    fn find_in_leaf(
        &self,
        img: &[u8],
        page: PageId,
        key: u64,
        include_deleted: bool,
    ) -> Option<LeafHit> {
        let n = self.layout.n_entries(img);
        for i in 0..n {
            let e = self.layout.leaf_entry(img, i);
            if e.key == key && (include_deleted || !e.deleted) {
                return Some(LeafHit { page, idx: i, entry: e });
            }
            if e.key > key {
                break;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Insert `key → value` on behalf of `txn`. The entry is tagged with
    /// the transaction's node id (the §4.1.2 Tagging Rule) and a logical
    /// `IndexInsert` record is written to the transaction's volatile log
    /// before the operation completes (Volatile LBM). Any splits performed
    /// on the way down are committed early (§4.2).
    pub fn insert(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        txn: TxnId,
        key: u64,
        value: [u8; VAL_SIZE],
    ) -> Result<(), BtreeError> {
        let node = txn.node();
        // Preemptive descent: split every full node encountered, so the
        // parent always has room for the separator.
        let mut page = self.root;
        {
            let img = ctx.read_page_image(node, page)?;
            if self.is_full(&img) {
                self.grow_root(ctx, txn, &img)?;
                page = self.root;
            }
        }
        loop {
            let img = ctx.read_page_image(node, page)?;
            match self.layout.kind(&img) {
                Some(NodeKind::Leaf) => break,
                Some(NodeKind::Branch) => {
                    let child = self.child_for(&img, key);
                    let child_img = ctx.read_page_image(node, child)?;
                    if self.is_full(&child_img) {
                        self.split_child(ctx, txn, page, child, &child_img)?;
                        // Re-route: the key may now belong to the new
                        // sibling.
                        let img2 = ctx.read_page_image(node, page)?;
                        page = self.child_for(&img2, key);
                    } else {
                        page = child;
                    }
                }
                None => panic!("unformatted page {page} reached during insert"),
            }
        }
        // Leaf insert.
        let mut img = ctx.read_page_image(node, page)?;
        debug_assert!(!self.is_full(&img), "preemptive split guarantees room");
        if self.find_in_leaf(&img, page, key, false).is_some() {
            return Err(BtreeError::DuplicateKey { key });
        }
        let gsn = ctx.next_gsn();
        let lsn = ctx.logs.append(
            node,
            LogPayload::IndexInsert { txn, key, value: Bytes::copy_from_slice(&value), gsn },
        );
        let n = self.layout.n_entries(&img);
        let pos = (0..n).find(|&i| self.layout.leaf_entry(&img, i).key > key).unwrap_or(n);
        // Shift entries right in the local image, then write the dirty
        // span (header + moved region) back through the coherent store.
        for i in (pos..n).rev() {
            let e = self.layout.leaf_entry(&img, i);
            self.layout.set_leaf_entry(&mut img, i + 1, &e);
        }
        let entry = LeafEntry { key, tag: node.0, deleted: false, value };
        self.layout.set_leaf_entry(&mut img, pos, &entry);
        self.layout.set_n_entries(&mut img, n + 1);
        let (h0, h1) = self.layout.header_range();
        let (d0, _) = self.layout.leaf_entry_range(pos);
        let (_, d1) = self.layout.leaf_entry_range(n);
        let header_span = ctx.write(node, page, h0, &img[h0..h1])?;
        let data_span = ctx.write(node, page, d0, &img[d0..d1])?;
        ctx.note_update(node, page, lsn)?;
        ctx.after_update(node, &[header_span, data_span])?;
        self.stats.inserts += 1;
        Ok(())
    }

    fn is_full(&self, img: &[u8]) -> bool {
        let n = self.layout.n_entries(img);
        match self.layout.kind(img) {
            Some(NodeKind::Leaf) => n >= self.layout.leaf_capacity(),
            Some(NodeKind::Branch) => n >= self.layout.branch_capacity(),
            None => false,
        }
    }

    /// Grow the tree by one level: the current (full) root gets a new
    /// parent. Early-committed structural change.
    fn grow_root(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        txn: TxnId,
        old_root_img: &[u8],
    ) -> Result<(), BtreeError> {
        let node = txn.node();
        let new_root = self.alloc_page()?;
        ctx.create_zero_page(node, new_root)?;
        let mut img = vec![0u8; self.layout.page_size];
        self.layout.format(&mut img, NodeKind::Branch);
        self.layout.set_left_child(&mut img, self.root);
        let (h0, h1) = self.layout.header_range();
        ctx.write(node, new_root, h0, &img[h0..h1])?;
        let old_root = self.root;
        self.root = new_root;
        // Split the (full) old root under its new parent right away.
        self.split_child(ctx, txn, new_root, old_root, old_root_img)?;
        // Early commit: forced structural record + flush of the new root.
        let lsn = ctx.logs.append(
            node,
            LogPayload::Structural {
                txn,
                kind: StructuralKind::BtreeNewRoot { root_page: new_root.0 },
            },
        );
        ctx.note_update(node, new_root, lsn)?;
        ctx.force_node_log(node)?;
        ctx.flush_page(node, new_root)?;
        self.stats.root_grows += 1;
        Ok(())
    }

    /// Split the full `child` of `parent` (parent has room). Moves the
    /// upper half of the child's entries into a freshly allocated sibling
    /// and inserts the separator into the parent. The whole action is a
    /// nested top-level action: its structural log record is forced and the
    /// three affected pages are flushed before returning (§4.2), so no
    /// other transaction can become dependent on volatile structural state.
    fn split_child(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        txn: TxnId,
        parent: PageId,
        child: PageId,
        child_img: &[u8],
    ) -> Result<(), BtreeError> {
        let node = txn.node();
        let new_page = self.alloc_page()?;
        ctx.create_zero_page(node, new_page)?;
        let kind = self.layout.kind(child_img).expect("split target formatted");
        let n = self.layout.n_entries(child_img);
        let mut child_new = child_img.to_vec();
        let mut sibling = vec![0u8; self.layout.page_size];
        self.layout.format(&mut sibling, kind);
        let split_key;
        match kind {
            NodeKind::Leaf => {
                let half = n / 2;
                split_key = self.layout.leaf_entry(child_img, half).key;
                for (j, i) in (half..n).enumerate() {
                    let e = self.layout.leaf_entry(child_img, i);
                    self.layout.set_leaf_entry(&mut sibling, j, &e);
                }
                self.layout.set_n_entries(&mut sibling, n - half);
                self.layout.set_next_leaf(&mut sibling, self.layout.next_leaf(child_img));
                self.layout.set_n_entries(&mut child_new, half);
                self.layout.set_next_leaf(&mut child_new, Some(new_page));
            }
            NodeKind::Branch => {
                let mid = n / 2;
                let promoted = self.layout.branch_ref(child_img, mid);
                split_key = promoted.key;
                self.layout.set_left_child(&mut sibling, promoted.child);
                for (j, i) in (mid + 1..n).enumerate() {
                    let r = self.layout.branch_ref(child_img, i);
                    self.layout.set_branch_ref(&mut sibling, j, &r);
                }
                self.layout.set_n_entries(&mut sibling, n - mid - 1);
                self.layout.set_n_entries(&mut child_new, mid);
            }
        }
        // Write both node images.
        let ps = self.layout.page_size;
        let data_start = smdb_storage::PAGE_DATA_OFFSET;
        ctx.write(node, child, data_start, &child_new[data_start..ps])?;
        ctx.write(node, new_page, data_start, &sibling[data_start..ps])?;
        // Insert the separator into the parent (which has room).
        let mut pimg = ctx.read_page_image(node, parent)?;
        let pn = self.layout.n_entries(&pimg);
        debug_assert!(pn < self.layout.branch_capacity());
        let pos = (0..pn).find(|&i| self.layout.branch_ref(&pimg, i).key > split_key).unwrap_or(pn);
        for i in (pos..pn).rev() {
            let r = self.layout.branch_ref(&pimg, i);
            self.layout.set_branch_ref(&mut pimg, i + 1, &r);
        }
        self.layout.set_branch_ref(&mut pimg, pos, &BranchRef { key: split_key, child: new_page });
        self.layout.set_n_entries(&mut pimg, pn + 1);
        let (h0, h1) = self.layout.header_range();
        ctx.write(node, parent, h0, &pimg[h0..h1])?;
        let (d0, _) = self.layout.branch_entry_range(pos);
        let (_, d1) = self.layout.branch_entry_range(pn);
        ctx.write(node, parent, d0, &pimg[d0..d1])?;
        // Early commit: force the structural record, then flush the three
        // affected pages so the structure is durable before anyone uses it.
        let lsn = ctx.logs.append(
            node,
            LogPayload::Structural {
                txn,
                kind: StructuralKind::BtreeSplit {
                    old_page: child.0,
                    new_page: new_page.0,
                    split_key,
                },
            },
        );
        ctx.note_update(node, child, lsn)?;
        ctx.note_update(node, new_page, lsn)?;
        ctx.note_update(node, parent, lsn)?;
        ctx.force_node_log(node)?;
        ctx.flush_page(node, child)?;
        ctx.flush_page(node, new_page)?;
        ctx.flush_page(node, parent)?;
        self.stats.splits += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Delete (logical, §4.2.1)
    // ------------------------------------------------------------------

    /// Logically delete `key` on behalf of `txn`: the entry is *marked*
    /// deleted and tagged; the space is not reclaimed until the deleter
    /// commits. Because the mark and the record share a cache line, the
    /// undo of a migrated uncommitted delete is merely unmarking (§4.2.1).
    pub fn delete(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        txn: TxnId,
        key: u64,
    ) -> Result<(), BtreeError> {
        let node = txn.node();
        let hit = self.search(ctx, node, key)?.ok_or(BtreeError::KeyNotFound { key })?;
        if hit.entry.tag != NULL_TAG && hit.entry.tag != node.0 {
            return Err(BtreeError::ConcurrentUpdate { key, tag: hit.entry.tag });
        }
        let gsn = ctx.next_gsn();
        let lsn = ctx.logs.append(
            node,
            LogPayload::IndexDelete {
                txn,
                key,
                value: Bytes::copy_from_slice(&hit.entry.value),
                gsn,
            },
        );
        let mut e = hit.entry;
        e.deleted = true;
        e.tag = node.0;
        let touched = self.write_leaf_entry(ctx, node, hit.page, hit.idx, &e)?;
        ctx.note_update(node, hit.page, lsn)?;
        ctx.after_update(node, &[touched])?;
        self.stats.deletes += 1;
        Ok(())
    }

    fn write_leaf_entry(
        &self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        page: PageId,
        idx: usize,
        e: &LeafEntry,
    ) -> Result<crate::pageio::LineSpan, BtreeError> {
        let mut buf = vec![0u8; LEAF_ENTRY_SIZE];
        // Encode into a scratch image region.
        let mut scratch = vec![0u8; self.layout.page_size];
        self.layout.set_leaf_entry(&mut scratch, idx, e);
        let (s, t) = self.layout.leaf_entry_range(idx);
        buf.copy_from_slice(&scratch[s..t]);
        ctx.write(node, page, s, &buf)
    }

    // ------------------------------------------------------------------
    // Commit / abort processing
    // ------------------------------------------------------------------

    /// Post-commit processing for one key `txn` touched: clear the undo
    /// tag; physically reclaim the space of a committed delete (§4.2.1 —
    /// space freed by a delete becomes reusable only now).
    pub fn commit_key(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        txn: TxnId,
        key: u64,
    ) -> Result<(), BtreeError> {
        let node = txn.node();
        let Some(hit) = self.search_any(ctx, node, key)? else {
            return Ok(()); // already compacted
        };
        if hit.entry.tag != node.0 {
            return Ok(()); // not ours (tag already cleared, or reused key)
        }
        if hit.entry.deleted {
            self.remove_entry(ctx, node, hit.page, hit.idx)?;
        } else {
            let mut e = hit.entry;
            e.tag = NULL_TAG;
            self.write_leaf_entry(ctx, node, hit.page, hit.idx, &e)?;
        }
        Ok(())
    }

    /// Undo an uncommitted insert: physically remove the entry
    /// (§4.2.1 — "allocated space can always be freed"). Used by voluntary
    /// aborts and by restart recovery (with the recovery node acting).
    pub fn undo_insert(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        key: u64,
    ) -> Result<(), BtreeError> {
        let Some(hit) = self.search_any(ctx, node, key)? else {
            return Ok(()); // nothing materialized (or already undone)
        };
        self.remove_entry(ctx, node, hit.page, hit.idx)?;
        Ok(())
    }

    /// Undo an uncommitted logical delete: unmark the entry and clear its
    /// tag.
    pub fn undo_delete(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        key: u64,
    ) -> Result<(), BtreeError> {
        let Some(hit) = self.search_any(ctx, node, key)? else {
            return Ok(());
        };
        let mut e = hit.entry;
        e.deleted = false;
        e.tag = NULL_TAG;
        self.write_leaf_entry(ctx, node, hit.page, hit.idx, &e)?;
        Ok(())
    }

    /// Physically remove entry `idx` from leaf `page` (compaction).
    pub(crate) fn remove_entry(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        page: PageId,
        idx: usize,
    ) -> Result<(), BtreeError> {
        let mut img = ctx.read_page_image(node, page)?;
        let n = self.layout.n_entries(&img);
        debug_assert!(idx < n);
        for i in idx..n - 1 {
            let e = self.layout.leaf_entry(&img, i + 1);
            self.layout.set_leaf_entry(&mut img, i, &e);
        }
        self.layout.set_n_entries(&mut img, n - 1);
        let (h0, h1) = self.layout.header_range();
        ctx.write(node, page, h0, &img[h0..h1])?;
        if n > 1 && idx < n - 1 {
            let (d0, _) = self.layout.leaf_entry_range(idx);
            let (_, d1) = self.layout.leaf_entry_range(n - 2);
            ctx.write(node, page, d0, &img[d0..d1])?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scans (oracle/tests/examples)
    // ------------------------------------------------------------------

    /// All live `(key, value)` pairs in key order, walking the leaf chain.
    pub fn scan_live(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
    ) -> Result<Vec<(u64, [u8; VAL_SIZE])>, BtreeError> {
        let mut out = Vec::new();
        let mut page = Some(self.first_leaf());
        while let Some(p) = page {
            let img = ctx.read_page_image(node, p)?;
            debug_assert_eq!(self.layout.kind(&img), Some(NodeKind::Leaf));
            for e in self.layout.leaf_entries(&img) {
                if !e.deleted {
                    out.push((e.key, e.value));
                }
            }
            page = self.layout.next_leaf(&img);
        }
        Ok(out)
    }

    /// Live entries with keys in `[lo, hi]`, in key order: descend to
    /// `lo`'s leaf and walk the chain.
    pub fn range_live(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, [u8; VAL_SIZE])>, BtreeError> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let mut page = Some(self.descend(ctx, node, lo)?);
        while let Some(p) = page {
            let img = ctx.read_page_image(node, p)?;
            debug_assert_eq!(self.layout.kind(&img), Some(NodeKind::Leaf));
            for e in self.layout.leaf_entries(&img) {
                if e.key > hi {
                    return Ok(out);
                }
                if e.key >= lo && !e.deleted {
                    out.push((e.key, e.value));
                }
            }
            page = self.layout.next_leaf(&img);
        }
        Ok(out)
    }

    /// All entries (live, deleted, tagged) in key order — for recovery and
    /// invariant checks.
    pub fn scan_all(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
    ) -> Result<Vec<LeafEntry>, BtreeError> {
        let mut out = Vec::new();
        let mut page = Some(self.first_leaf());
        while let Some(p) = page {
            let img = ctx.read_page_image(node, p)?;
            out.extend(self.layout.leaf_entries(&img));
            page = self.layout.next_leaf(&img);
        }
        Ok(out)
    }

    /// Check structural invariants (sorted leaves, consistent chain,
    /// branch separators). Panics with a description on violation; for
    /// tests and property checks.
    pub fn check_invariants(
        &mut self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
    ) -> Result<(), BtreeError> {
        let keys: Vec<u64> = self.scan_all(ctx, node)?.iter().map(|e| e.key).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1], "leaf chain out of order: {} > {}", w[0], w[1]);
        }
        self.check_subtree(ctx, node, self.root, u64::MIN, u64::MAX)?;
        Ok(())
    }

    fn check_subtree(
        &self,
        ctx: &mut TreeCtx<'_>,
        node: NodeId,
        page: PageId,
        lo: u64,
        hi: u64,
    ) -> Result<(), BtreeError> {
        let img = ctx.read_page_image(node, page)?;
        match self.layout.kind(&img) {
            Some(NodeKind::Leaf) => {
                for e in self.layout.leaf_entries(&img) {
                    assert!(e.key >= lo && e.key < hi, "leaf key {} outside [{lo}, {hi})", e.key);
                }
            }
            Some(NodeKind::Branch) => {
                let refs = self.layout.branch_refs(&img);
                let mut lower = lo;
                let mut child = self.layout.left_child(&img);
                for r in &refs {
                    assert!(r.key >= lo && r.key < hi, "separator {} outside [{lo}, {hi})", r.key);
                    self.check_subtree(ctx, node, child, lower, r.key)?;
                    lower = r.key;
                    child = r.child;
                }
                self.check_subtree(ctx, node, child, lower, hi)?;
            }
            None => panic!("unformatted page {page} in tree"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::{Machine, SimConfig};
    use smdb_storage::{PageGeometry, StableDb};
    use smdb_wal::{LbmMode, LogSet, PageLsnTable};

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    struct Owned {
        m: Machine,
        db: StableDb,
        logs: LogSet,
        plt: PageLsnTable,
        gsn: u64,
    }

    fn setup() -> Owned {
        let m = Machine::new(SimConfig::new(2));
        let mut db = StableDb::new(PageGeometry::new(128, 8)); // 1 KiB pages
        db.format(64);
        Owned { m, db, logs: LogSet::new(2), plt: PageLsnTable::new(), gsn: 0 }
    }

    macro_rules! ctx {
        ($o:expr) => {
            TreeCtx::new(
                &mut $o.m,
                &mut $o.db,
                &mut $o.logs,
                &mut $o.plt,
                LbmMode::Volatile,
                &mut $o.gsn,
            )
        };
    }

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    fn val(x: u64) -> [u8; VAL_SIZE] {
        x.to_le_bytes()
    }

    #[test]
    fn insert_then_search() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        tree.insert(&mut c, t(0, 1), 42, val(420)).unwrap();
        let hit = tree.search(&mut c, N0, 42).unwrap().unwrap();
        assert_eq!(hit.entry.value, val(420));
        assert_eq!(hit.entry.tag, 0, "tagged with inserting node");
        assert!(tree.search(&mut c, N0, 43).unwrap().is_none());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        tree.insert(&mut c, t(0, 1), 42, val(1)).unwrap();
        assert_eq!(
            tree.insert(&mut c, t(0, 2), 42, val(2)),
            Err(BtreeError::DuplicateKey { key: 42 })
        );
    }

    #[test]
    fn many_inserts_cause_splits_and_stay_sorted() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        // Insert enough to split (leaf capacity with 1 KiB pages is 52).
        let n = 300u64;
        for i in 0..n {
            let key = (i * 7919) % 100_000; // scattered
            tree.insert(&mut c, t(0, i + 1), key, val(key)).unwrap();
        }
        assert!(tree.stats().splits > 0);
        assert!(tree.stats().root_grows >= 1);
        let live = tree.scan_live(&mut c, N0).unwrap();
        assert_eq!(live.len(), n as usize);
        let keys: Vec<u64> = live.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        tree.check_invariants(&mut c, N0).unwrap();
        // Every inserted key findable.
        for i in 0..n {
            let key = (i * 7919) % 100_000;
            assert!(tree.search(&mut c, N0, key).unwrap().is_some(), "key {key} lost");
        }
    }

    #[test]
    fn logical_delete_hides_then_commit_reclaims() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        let txn = t(0, 1);
        tree.insert(&mut c, txn, 5, val(55)).unwrap();
        tree.commit_key(&mut c, txn, 5).unwrap(); // simulate commit of insert
        let txn2 = t(0, 2);
        tree.delete(&mut c, txn2, 5).unwrap();
        assert!(tree.search(&mut c, N0, 5).unwrap().is_none(), "marked entries invisible");
        // Entry still physically present (space not reclaimed).
        let hit = tree.search_any(&mut c, N0, 5).unwrap().unwrap();
        assert!(hit.entry.deleted);
        assert_eq!(hit.entry.tag, 0);
        tree.commit_key(&mut c, txn2, 5).unwrap();
        assert!(tree.search_any(&mut c, N0, 5).unwrap().is_none(), "space reclaimed after commit");
    }

    #[test]
    fn undo_delete_unmarks() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        let txn = t(0, 1);
        tree.insert(&mut c, txn, 5, val(55)).unwrap();
        tree.commit_key(&mut c, txn, 5).unwrap();
        let txn2 = t(0, 2);
        tree.delete(&mut c, txn2, 5).unwrap();
        tree.undo_delete(&mut c, N0, 5).unwrap();
        let hit = tree.search(&mut c, N0, 5).unwrap().unwrap();
        assert_eq!(hit.entry.value, val(55));
        assert_eq!(hit.entry.tag, NULL_TAG);
    }

    #[test]
    fn undo_insert_removes() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        tree.insert(&mut c, t(0, 1), 5, val(55)).unwrap();
        tree.undo_insert(&mut c, N0, 5).unwrap();
        assert!(tree.search_any(&mut c, N0, 5).unwrap().is_none());
    }

    #[test]
    fn delete_of_missing_key_errors() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        assert_eq!(tree.delete(&mut c, t(0, 1), 9), Err(BtreeError::KeyNotFound { key: 9 }));
    }

    #[test]
    fn concurrent_tag_conflict_detected() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        tree.insert(&mut c, t(0, 1), 5, val(55)).unwrap();
        // A transaction on n1 tries to delete the uncommitted entry: the
        // lock layer would normally prevent this; the tree detects it.
        assert_eq!(
            tree.delete(&mut c, t(1, 1), 5),
            Err(BtreeError::ConcurrentUpdate { key: 5, tag: 0 })
        );
    }

    #[test]
    fn splits_are_early_committed() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        for i in 0..120u64 {
            tree.insert(&mut c, t(0, i + 1), i, val(i)).unwrap();
        }
        assert!(tree.stats().splits > 0);
        // Every structural record is in the *stable* prefix of the log.
        let structural_total = c.logs.log(N0).stats().structural_records;
        let stable_structural = c
            .logs
            .log(N0)
            .stable_records()
            .iter()
            .filter(|r| matches!(r.payload, LogPayload::Structural { .. }))
            .count() as u64;
        assert_eq!(structural_total, stable_structural);
        assert!(structural_total > 0);
    }

    #[test]
    fn cross_node_inserts_share_lines() {
        // Two nodes inserting adjacent keys touch the same leaf lines —
        // the §4.2.1 migration scenario.
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        tree.insert(&mut c, t(0, 1), 10, val(1)).unwrap();
        let before = c.m.stats().invalidations + c.m.stats().migrations;
        tree.insert(&mut c, t(1, 1), 11, val(2)).unwrap();
        // n1 first reads the leaf (replication), then writes: n0's copy is
        // invalidated and the only copy ends up on n1 — the H_ww2 pattern.
        assert!(
            c.m.stats().invalidations + c.m.stats().migrations > before,
            "cross-node insert took the leaf lines away from n0"
        );
        let leaf = tree.first_leaf();
        let line0 = c.line_of(leaf, 20); // first entry's line
        assert_eq!(c.m.holders(line0), vec![N1], "only copy lives on the last writer");
        let live = tree.scan_live(&mut c, N0).unwrap();
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn tree_full_reported() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 2).unwrap();
        let mut hit_full = false;
        for i in 0..200u64 {
            match tree.insert(&mut c, t(0, i + 1), i, val(i)) {
                Ok(()) => {}
                Err(BtreeError::TreeFull) => {
                    hit_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_full);
    }

    #[test]
    fn descending_and_random_order_inserts() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        for i in (0..150u64).rev() {
            tree.insert(&mut c, t(0, 200 - i), i, val(i)).unwrap();
        }
        tree.check_invariants(&mut c, N0).unwrap();
        let live = tree.scan_live(&mut c, N0).unwrap();
        assert_eq!(live.len(), 150);
        assert_eq!(live[0].0, 0);
        assert_eq!(live[149].0, 149);
    }

    #[test]
    fn range_live_respects_bounds_and_marks() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        for i in 0..200u64 {
            tree.insert(&mut c, t(0, i + 1), i * 2, val(i)).unwrap();
            tree.commit_key(&mut c, t(0, i + 1), i * 2).unwrap();
        }
        let txd = t(0, 900);
        tree.delete(&mut c, txd, 100).unwrap(); // marked, uncommitted
        let r = tree.range_live(&mut c, N0, 95, 110).unwrap();
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![96, 98, 102, 104, 106, 108, 110], "100 hidden by the mark");
        assert!(tree.range_live(&mut c, N0, 10, 5).unwrap().is_empty(), "inverted range");
        let all = tree.range_live(&mut c, N0, 0, u64::MAX).unwrap();
        assert_eq!(all.len(), 199);
    }

    #[test]
    fn reads_from_other_node_see_inserts() {
        let mut o = setup();
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, N0, 10, 40).unwrap();
        tree.insert(&mut c, t(0, 1), 7, val(77)).unwrap();
        let hit = tree.search(&mut c, N1, 7).unwrap().unwrap();
        assert_eq!(hit.entry.value, val(77));
    }
}
