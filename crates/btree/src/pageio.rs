//! Coherent, WAL-respecting page I/O for tree pages.
//!
//! [`TreeCtx`] bundles the mutable machinery every tree operation needs:
//! the coherent machine, the stable database, the log set, the shared
//! (page, LSN) WAL table, and the LBM policy. All byte traffic between the
//! tree algorithms and the simulated memory flows through here, which is
//! where the Logging-Before-Migration enforcement happens:
//!
//! * under [`LbmMode::StableTriggered`], every access first consults the
//!   machine's pending-trigger query; if the touched line is *active* (an
//!   unforced uncommitted update by another node), that node's log is
//!   forced before the access proceeds — the §5.2 trigger;
//! * writes by a `StableTriggered` engine mark the written lines active;
//! * `StableEager` forcing and `Volatile` no-forcing are driven by the
//!   callers through [`TreeCtx::after_update`].

use crate::tree::BtreeError;
use smdb_obs::{Event as ObsEvent, ForceReason};
use smdb_sim::{LineId, Machine, MemError, NodeId};
use smdb_storage::{PageGeometry, PageId, StableDb, PAGE_LSN_OFFSET, PAGE_LSN_SIZE};
use smdb_wal::{LbmMode, LogSet, Lsn, PageLsnTable};

/// Histogram of records made durable per physical log force.
pub const FORCE_RECORDS_HISTOGRAM: &str = smdb_obs::names::WAL_FORCE_RECORDS;

/// Counter of physical log forces (each paid the full force latency).
pub const PHYSICAL_FORCES_COUNTER: &str = smdb_obs::names::WAL_PHYSICAL_FORCES;

/// Counter of LBM force requests absorbed by the coalescing window
/// instead of paying a physical force.
pub const COALESCED_FORCES_COUNTER: &str = smdb_obs::names::WAL_FORCES_COALESCED;

/// Counter of log-record payload bytes appended to the per-node logs.
pub const APPEND_BYTES_COUNTER: &str = smdb_obs::names::WAL_APPEND_BYTES;

/// A contiguous run of cache lines touched by one page write.
///
/// Because a page occupies consecutive line addresses
/// ([`PageGeometry::line_addr`]), the lines covered by any byte range are a
/// contiguous `LineId` interval — so [`TreeCtx::write`] can describe them
/// with two words instead of allocating a `Vec<LineId>` per write (the old
/// hot-path behaviour).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineSpan {
    start: u64,
    count: u32,
}

impl LineSpan {
    /// The empty span.
    pub fn empty() -> Self {
        LineSpan::default()
    }

    /// Span covering `count` lines starting at `start`.
    pub fn new(start: LineId, count: u32) -> Self {
        LineSpan { start: start.0, count }
    }

    /// Number of lines covered.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the span covers no lines.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The covered lines, in address order.
    pub fn iter(&self) -> impl Iterator<Item = LineId> {
        (self.start..self.start + self.count as u64).map(LineId)
    }
}

/// Mutable context threaded through every tree operation.
pub struct TreeCtx<'a> {
    /// The coherent shared-memory machine.
    pub m: &'a mut Machine,
    /// The stable database (tree pages are paged against it).
    pub db: &'a mut StableDb,
    /// All per-node logs.
    pub logs: &'a mut LogSet,
    /// The shared (page, LSN) WAL-enforcement table (§6).
    pub plt: &'a mut PageLsnTable,
    /// The LBM policy in force.
    pub lbm: LbmMode,
    /// Machine-wide global update sequence counter (stamped into data log
    /// records so restart recovery can totally order redo candidates
    /// across the per-node logs).
    pub gsn: &'a mut u64,
    /// Count of log forces fired by the §5.2 coherence trigger during this
    /// context's lifetime (feeds the Table 1 "higher frequency of log
    /// forces" accounting).
    pub trigger_forces: u64,
    /// Count of LBM force requests registered with the coalescing window
    /// (deferred, not physical) during this context's lifetime.
    pub force_requests: u64,
    /// Whether LBM force requests go through the coalescing window
    /// (forward path) instead of each paying a physical force. Always off
    /// for recovery-side contexts: recovery forces are physical.
    coalesce: bool,
    /// Node whose force charges this context should tally into
    /// [`TreeCtx::attr_force_cycles`] — the acting transaction's home,
    /// set by the engine's index operations for span attribution. Forces
    /// charged to *other* nodes' clocks (trigger forces on a remote
    /// owner, flush-side WAL forces of other updaters) are outside the
    /// home-clock span and deliberately not tallied.
    attr_node: Option<NodeId>,
    /// Simulated cycles of physical log forces charged to
    /// [`TreeCtx::attr_node`]'s clock during this context's lifetime.
    pub attr_force_cycles: u64,
    /// Reusable page-image buffer for flushes: allocated on first use,
    /// reused for every subsequent flush through this context (restart's
    /// Redo-All/Selective-Redo scans flush many pages through one context).
    scratch: Vec<u8>,
}

impl<'a> TreeCtx<'a> {
    /// Bundle the machinery.
    pub fn new(
        m: &'a mut Machine,
        db: &'a mut StableDb,
        logs: &'a mut LogSet,
        plt: &'a mut PageLsnTable,
        lbm: LbmMode,
        gsn: &'a mut u64,
    ) -> Self {
        TreeCtx {
            m,
            db,
            logs,
            plt,
            lbm,
            gsn,
            trigger_forces: 0,
            force_requests: 0,
            coalesce: false,
            attr_node: None,
            attr_force_cycles: 0,
            scratch: Vec::new(),
        }
    }

    /// Tally force cycles charged to `node`'s clock into
    /// [`TreeCtx::attr_force_cycles`] (span stage attribution).
    pub fn with_attribution(mut self, node: NodeId) -> Self {
        self.attr_node = Some(node);
        self
    }

    /// Record that a physical force just advanced `node`'s clock by
    /// `cost` cycles.
    fn note_attr_force(&mut self, node: NodeId, cost: u64) {
        if self.attr_node == Some(node) {
            self.attr_force_cycles += cost;
        }
    }

    /// Route LBM force requests through the coalescing window. The log
    /// set's own coalescing must be enabled
    /// ([`LogSet::set_coalescing`]) when this is.
    pub fn with_coalescing(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Draw the next global update sequence number.
    pub fn next_gsn(&mut self) -> u64 {
        *self.gsn += 1;
        *self.gsn
    }

    /// Page geometry of the stable database.
    pub fn geometry(&self) -> PageGeometry {
        self.db.geometry()
    }

    /// The cache line holding byte `offset` of `page`.
    pub fn line_of(&self, page: PageId, offset: usize) -> LineId {
        let g = self.geometry();
        LineId(g.line_addr(page, offset / g.line_size))
    }

    /// Records on `node`'s log not yet durable (counted *before* a force
    /// moves the stable pointer).
    fn unforced_records(&self, node: NodeId) -> u64 {
        let log = self.logs.log(node);
        log.last_lsn().0.saturating_sub(log.stable_lsn().0)
    }

    /// Observability hook for a physical log force on `node` that made
    /// `records` records durable.
    fn note_force(&self, node: NodeId, records: u64, reason: ForceReason) {
        let obs = self.m.obs();
        obs.metrics.observe(FORCE_RECORDS_HISTOGRAM, records);
        obs.metrics.inc(PHYSICAL_FORCES_COUNTER);
        obs.bus.emit(self.m.now(node), || ObsEvent::WalForce { node: node.0, records, reason });
    }

    /// Enforce the §5.2 trigger for an impending access: if the line is
    /// active with another node's unforced update, force that node's log
    /// and clear the bit. No-op under policies that don't use triggers
    /// (volatile logging needs no force; eager forcing never leaves active
    /// lines behind).
    pub fn enforce_trigger(
        &mut self,
        node: NodeId,
        line: LineId,
        is_write: bool,
    ) -> Result<(), BtreeError> {
        // Coalesced StableEager defers its per-update force requests to
        // the same coherence trigger StableTriggered uses, so the trigger
        // must be live for it too.
        if !(self.lbm.uses_triggers() || (self.coalesce && self.lbm.forces_eagerly())) {
            return Ok(());
        }
        if let Some(ev) = self.m.pending_triggers(node, line, is_write) {
            let obs_on = self.m.obs().is_enabled();
            let pending = if obs_on { self.unforced_records(ev.owner) } else { 0 };
            if self.logs.force_all_checked(ev.owner).map_err(MemError::FaultCrash)? {
                let cost = self.m.config().cost.log_force;
                self.m.advance(ev.owner, cost);
                self.note_attr_force(ev.owner, cost);
                self.trigger_forces += 1;
                if obs_on {
                    let (owner, l) = (ev.owner.0, ev.line.0);
                    self.m.obs().bus.emit(self.m.now(ev.owner), || ObsEvent::LbmTriggeredForce {
                        owner,
                        line: l,
                    });
                    self.note_force(ev.owner, pending, ForceReason::Lbm);
                }
            }
            self.m.clear_active(ev.line);
        }
        Ok(())
    }

    /// Policy hook to run after an update's log record has been appended:
    /// eager forcing under `StableEager`, active-bit marking under
    /// `StableTriggered`, nothing under `Volatile`.
    pub fn after_update(&mut self, node: NodeId, spans: &[LineSpan]) -> Result<(), BtreeError> {
        match self.lbm {
            LbmMode::Volatile => {}
            LbmMode::StableEager => {
                if self.coalesce {
                    // Group commit of LBM forces: raise the pending
                    // high-water mark (one word) instead of paying the
                    // physical force, then defer to the coherence
                    // trigger exactly like StableTriggered — the
                    // request only becomes physical when uncommitted
                    // bytes would actually publish.
                    let last = self.logs.log(node).last_lsn();
                    if self.logs.request_force_to(node, last) {
                        self.force_requests += 1;
                        let obs = self.m.obs();
                        if obs.is_enabled() {
                            obs.metrics.inc(COALESCED_FORCES_COUNTER);
                        }
                    }
                    self.mark_or_force(node, spans)?;
                } else {
                    self.force_node_log_for(node, ForceReason::Lbm)?;
                }
            }
            LbmMode::StableTriggered => {
                self.mark_or_force(node, spans)?;
            }
        }
        Ok(())
    }

    /// Deferred-force line handling shared by `StableTriggered` and
    /// coalesced `StableEager`: under write-broadcast, a write to a
    /// *shared* line has already replicated the uncommitted bytes into
    /// other caches — the "migration" happened at the write itself, so
    /// the log must be forced now. Only exclusively-held lines can defer
    /// to the coherence trigger.
    fn mark_or_force(&mut self, node: NodeId, spans: &[LineSpan]) -> Result<(), BtreeError> {
        let mut forced = false;
        for l in spans.iter().flat_map(LineSpan::iter) {
            if self.m.holder_count(l) > 1 {
                let obs_on = self.m.obs().is_enabled();
                let pending = if obs_on { self.unforced_records(node) } else { 0 };
                if !forced && self.logs.force_all_checked(node).map_err(MemError::FaultCrash)? {
                    let cost = self.m.config().cost.log_force;
                    self.m.advance(node, cost);
                    self.note_attr_force(node, cost);
                    self.trigger_forces += 1;
                    if obs_on {
                        self.note_force(node, pending, ForceReason::Lbm);
                    }
                }
                forced = true;
            } else {
                self.m.set_active(l, node);
            }
        }
        Ok(())
    }

    /// Force `node`'s entire log, charging the force latency if a physical
    /// force happened. Used by the tree algorithms for the forced
    /// structural records (early commit of structural changes), hence the
    /// `Commit` force reason.
    pub fn force_node_log(&mut self, node: NodeId) -> Result<(), BtreeError> {
        self.force_node_log_for(node, ForceReason::Commit)
    }

    /// [`TreeCtx::force_node_log`] with an explicit observability reason.
    pub fn force_node_log_for(
        &mut self,
        node: NodeId,
        reason: ForceReason,
    ) -> Result<(), BtreeError> {
        let obs_on = self.m.obs().is_enabled();
        let pending = if obs_on { self.unforced_records(node) } else { 0 };
        if self.logs.force_all_checked(node).map_err(MemError::FaultCrash)? {
            let cost = self.m.config().cost.log_force;
            self.m.advance(node, cost);
            self.note_attr_force(node, cost);
            if obs_on {
                self.note_force(node, pending, reason);
            }
        }
        Ok(())
    }

    /// Ensure every line of `page` is resident in some cache, faulting the
    /// page in from the stable database if necessary. Errors with
    /// [`MemError::LineLost`] (or a stall) if the page's lines were
    /// destroyed by a crash and not yet recovered.
    pub fn ensure_resident(&mut self, node: NodeId, page: PageId) -> Result<(), BtreeError> {
        let g = self.geometry();
        let first = LineId(g.line_addr(page, 0));
        if self.m.is_lost(first) {
            // Surface the loss exactly like a direct access would.
            let mut probe = [0u8; 1];
            return self.m.read_into(node, first, 0, &mut probe).map_err(BtreeError::from);
        }
        if self.m.line_exists(first) {
            return Ok(());
        }
        // Fault the page in from the stable database. The stable image is
        // borrowed directly (`db` and `m` are disjoint fields) — no page
        // copy is made.
        let img = self.db.read_page(page).ok_or(BtreeError::StablePageMissing { page })?;
        let cost = self.m.config().cost.disk_io;
        self.m.advance(node, cost);
        for idx in 0..g.lines_per_page {
            let line = LineId(g.line_addr(page, idx));
            let off = g.line_offset(idx);
            self.m.install_line(node, line, &img[off..off + g.line_size])?;
        }
        Ok(())
    }

    /// Read `buf.len()` bytes at `offset` within `page`, coherently, on
    /// behalf of `node`.
    pub fn read(
        &mut self,
        node: NodeId,
        page: PageId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), BtreeError> {
        self.ensure_resident(node, page)?;
        let g = self.geometry();
        let mut done = 0;
        while done < buf.len() {
            let abs = offset + done;
            let idx = abs / g.line_size;
            let within = abs % g.line_size;
            let chunk = (g.line_size - within).min(buf.len() - done);
            let line = LineId(g.line_addr(page, idx));
            self.enforce_trigger(node, line, false)?;
            self.m.read_into(node, line, within, &mut buf[done..done + chunk])?;
            done += chunk;
        }
        Ok(())
    }

    /// Read the full page image coherently.
    pub fn read_page_image(&mut self, node: NodeId, page: PageId) -> Result<Vec<u8>, BtreeError> {
        let mut buf = vec![0u8; self.geometry().page_size()];
        self.read(node, page, 0, &mut buf)?;
        Ok(buf)
    }

    /// Write `bytes` at `offset` within `page`, coherently, on behalf of
    /// `node`. Returns the lines touched (for active-bit marking).
    pub fn write(
        &mut self,
        node: NodeId,
        page: PageId,
        offset: usize,
        bytes: &[u8],
    ) -> Result<LineSpan, BtreeError> {
        self.ensure_resident(node, page)?;
        let g = self.geometry();
        if bytes.is_empty() {
            return Ok(LineSpan::empty());
        }
        let first_idx = offset / g.line_size;
        let mut done = 0;
        while done < bytes.len() {
            let abs = offset + done;
            let idx = abs / g.line_size;
            let within = abs % g.line_size;
            let chunk = (g.line_size - within).min(bytes.len() - done);
            let line = LineId(g.line_addr(page, idx));
            self.enforce_trigger(node, line, true)?;
            self.m.write(node, line, within, &bytes[done..done + chunk])?;
            done += chunk;
        }
        let last_idx = (offset + bytes.len() - 1) / g.line_size;
        Ok(LineSpan::new(LineId(g.line_addr(page, first_idx)), (last_idx - first_idx + 1) as u32))
    }

    /// Record an update to `page` by `node` at `lsn`: writes the Page-LSN
    /// field (which lives in the page's first cache line — §6) and notes
    /// the (page, node, lsn) entry in the WAL table. Returns the lines
    /// touched by the Page-LSN write (for active-bit marking).
    pub fn note_update(
        &mut self,
        node: NodeId,
        page: PageId,
        lsn: Lsn,
    ) -> Result<LineSpan, BtreeError> {
        let touched = self.write(node, page, PAGE_LSN_OFFSET, &lsn.0.to_le_bytes())?;
        self.plt.note_update(page, node, lsn);
        Ok(touched)
    }

    /// Current Page-LSN of the cached page.
    pub fn page_lsn(&mut self, node: NodeId, page: PageId) -> Result<Lsn, BtreeError> {
        let mut buf = [0u8; PAGE_LSN_SIZE];
        self.read(node, page, PAGE_LSN_OFFSET, &mut buf)?;
        Ok(Lsn(u64::from_le_bytes(buf)))
    }

    /// Flush `page` to the stable database, enforcing the WAL rule first:
    /// every node that updated the page since its last flush must have
    /// forced its log up to its last update LSN (§6). Returns the number of
    /// log forces this flush triggered.
    pub fn flush_page(&mut self, node: NodeId, page: PageId) -> Result<u64, BtreeError> {
        let mut forces = 0;
        for (n, lsn) in self.plt.flush_requirements(page) {
            if !self.logs.log(n).is_stable(lsn) {
                let obs_on = self.m.obs().is_enabled();
                let stable_before = self.logs.log(n).stable_lsn();
                if self.logs.force_to_checked(n, lsn).map_err(MemError::FaultCrash)? {
                    let cost = self.m.config().cost.log_force;
                    self.m.advance(n, cost);
                    self.note_attr_force(n, cost);
                    forces += 1;
                    if obs_on {
                        let records = lsn.0.saturating_sub(stable_before.0);
                        self.note_force(n, records, ForceReason::PageFlush);
                    }
                }
            }
        }
        // Assemble the page image in the reusable scratch buffer (one
        // allocation per context, not per flush).
        let ps = self.geometry().page_size();
        let mut img = std::mem::take(&mut self.scratch);
        img.clear();
        img.resize(ps, 0);
        self.read(node, page, 0, &mut img)?;
        // Torn-write crash point: the flush may die between sectors,
        // leaving a stable image that mixes old and new lines.
        let write = self.db.write_page_checked(node.0, page, &img);
        self.scratch = img;
        write.map_err(MemError::FaultCrash)?;
        let cost = self.m.config().cost.disk_io;
        self.m.advance(node, cost);
        self.plt.page_flushed(page);
        // The flushed lines are no longer "active": their updates are
        // either durable or covered by forced undo records.
        let g = self.geometry();
        for idx in 0..g.lines_per_page {
            self.m.clear_active(LineId(g.line_addr(page, idx)));
        }
        Ok(forces)
    }

    /// Discard every cached copy of the page's lines (after a flush, or
    /// during Redo-All's cache purge). The stable image must already be
    /// authoritative.
    pub fn evict_page(&mut self, page: PageId) {
        let g = self.geometry();
        for idx in 0..g.lines_per_page {
            let line = LineId(g.line_addr(page, idx));
            // Discard holders one at a time (the holder slice borrows the
            // directory, so it is re-fetched after each removal).
            while let Some(&holder) = self.m.holders(line).first() {
                let _ = self.m.discard(holder, line);
            }
        }
    }

    /// (Re)install every line of `page` from the stable image, on
    /// `node`, overwriting lost lines. Recovery-side primitive.
    pub fn install_page_from_stable(
        &mut self,
        node: NodeId,
        page: PageId,
    ) -> Result<(), BtreeError> {
        let g = self.geometry();
        let img = self.db.read_page(page).ok_or(BtreeError::StablePageMissing { page })?;
        let cost = self.m.config().cost.disk_io;
        self.m.advance(node, cost);
        for idx in 0..g.lines_per_page {
            let line = LineId(g.line_addr(page, idx));
            let off = g.line_offset(idx);
            self.m.install_line(node, line, &img[off..off + g.line_size])?;
        }
        Ok(())
    }

    /// Create a fresh zeroed page: stable zero image plus resident zero
    /// lines on `node`. Used for structural allocations (the stable write
    /// is part of the early commit).
    pub fn create_zero_page(&mut self, node: NodeId, page: PageId) -> Result<(), BtreeError> {
        let g = self.geometry();
        let zeros = vec![0u8; g.page_size()];
        self.db.write_page_checked(node.0, page, &zeros).map_err(MemError::FaultCrash)?;
        let cost = self.m.config().cost.disk_io;
        self.m.advance(node, cost);
        for idx in 0..g.lines_per_page {
            let line = LineId(g.line_addr(page, idx));
            self.m.install_line(node, line, &zeros[..g.line_size])?;
        }
        Ok(())
    }

    /// Whether any line of `page` was destroyed by a crash and not yet
    /// recovered.
    pub fn page_has_lost_lines(&self, page: PageId) -> bool {
        let g = self.geometry();
        (0..g.lines_per_page).any(|idx| self.m.is_lost(LineId(g.line_addr(page, idx))))
    }

    /// Whether any line of `page` is cached on a surviving node.
    pub fn page_cached_anywhere(&self, page: PageId) -> bool {
        let g = self.geometry();
        (0..g.lines_per_page).any(|idx| self.m.probe_cached(LineId(g.line_addr(page, idx))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::SimConfig;
    use smdb_storage::PageGeometry;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const P: PageId = PageId(2);

    struct Owned {
        m: Machine,
        db: StableDb,
        logs: LogSet,
        plt: PageLsnTable,
        gsn: u64,
    }

    fn setup(lbm: LbmMode) -> Owned {
        let m = Machine::new(SimConfig::new(2));
        let mut db = StableDb::new(PageGeometry::new(128, 4));
        db.format(8);
        let _ = lbm;
        Owned { m, db, logs: LogSet::new(2), plt: PageLsnTable::new(), gsn: 0 }
    }

    fn ctx(o: &mut Owned, lbm: LbmMode) -> TreeCtx<'_> {
        TreeCtx::new(&mut o.m, &mut o.db, &mut o.logs, &mut o.plt, lbm, &mut o.gsn)
    }

    #[test]
    fn fault_in_read_write_roundtrip() {
        let mut o = setup(LbmMode::Volatile);
        let mut c = ctx(&mut o, LbmMode::Volatile);
        c.write(N0, P, 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        c.read(N1, P, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(o.db.stats().page_reads, 1, "one fault-in read");
    }

    #[test]
    fn cross_line_write_spans_lines() {
        let mut o = setup(LbmMode::Volatile);
        let mut c = ctx(&mut o, LbmMode::Volatile);
        // Line size 128: a write at offset 120 of length 16 spans lines 0,1.
        let touched = c.write(N0, P, 120, &[7u8; 16]).unwrap();
        assert_eq!(touched.len(), 2);
        let mut buf = [0u8; 16];
        c.read(N0, P, 120, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 16]);
    }

    #[test]
    fn flush_respects_wal_rule() {
        let mut o = setup(LbmMode::Volatile);
        let mut c = ctx(&mut o, LbmMode::Volatile);
        c.write(N0, P, 50, &[1]).unwrap();
        let lsn = c.logs.append(N0, smdb_wal::LogPayload::Checkpoint);
        c.note_update(N0, P, lsn).unwrap();
        assert!(!c.logs.log(N0).is_stable(lsn));
        let forces = c.flush_page(N0, P).unwrap();
        assert_eq!(forces, 1, "flush forced the updater's log");
        assert!(c.logs.log(N0).is_stable(lsn));
        // The stable image now carries the data and the Page-LSN.
        let img = c.db.peek_page(P).unwrap();
        assert_eq!(img[50], 1);
        assert_eq!(u64::from_le_bytes(img[0..8].try_into().unwrap()), lsn.0);
    }

    #[test]
    fn stable_triggered_marks_and_forces() {
        let mut o = setup(LbmMode::StableTriggered);
        let mut c = ctx(&mut o, LbmMode::StableTriggered);
        // n0 updates; the engine appends a log record and marks active.
        let touched = c.write(N0, P, 10, &[9]).unwrap();
        let first = touched.iter().next().unwrap();
        c.logs.append(N0, smdb_wal::LogPayload::Checkpoint);
        c.after_update(N0, &[touched]).unwrap();
        assert_eq!(c.m.active_owner(first), Some(N0));
        assert_eq!(c.logs.log(N0).stable_lsn(), Lsn::ZERO);
        // n1 reads the same line: the trigger forces n0's log first.
        let mut buf = [0u8; 1];
        c.read(N1, P, 10, &mut buf).unwrap();
        assert_eq!(c.logs.log(N0).stable_lsn(), Lsn(1), "downgrade forced the log");
        assert_eq!(c.m.active_owner(first), None);
    }

    #[test]
    fn eager_policy_forces_every_update() {
        let mut o = setup(LbmMode::StableEager);
        let mut c = ctx(&mut o, LbmMode::StableEager);
        let touched = c.write(N0, P, 10, &[9]).unwrap();
        c.logs.append(N0, smdb_wal::LogPayload::Checkpoint);
        c.after_update(N0, &[touched]).unwrap();
        assert_eq!(c.logs.log(N0).stats().forces, 1);
    }

    #[test]
    fn volatile_policy_never_forces() {
        let mut o = setup(LbmMode::Volatile);
        let mut c = ctx(&mut o, LbmMode::Volatile);
        let touched = c.write(N0, P, 10, &[9]).unwrap();
        c.logs.append(N0, smdb_wal::LogPayload::Checkpoint);
        c.after_update(N0, &[touched]).unwrap();
        let mut buf = [0u8; 1];
        c.read(N1, P, 10, &mut buf).unwrap();
        assert_eq!(c.logs.log(N0).stats().forces, 0);
    }

    #[test]
    fn evict_then_refetch_from_stable() {
        let mut o = setup(LbmMode::Volatile);
        let mut c = ctx(&mut o, LbmMode::Volatile);
        c.write(N0, P, 40, &[3]).unwrap();
        c.flush_page(N0, P).unwrap();
        c.evict_page(P);
        assert!(!c.page_cached_anywhere(P));
        let mut buf = [0u8; 1];
        c.read(N1, P, 40, &mut buf).unwrap();
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn lost_page_detected_and_reinstallable() {
        let mut o = setup(LbmMode::Volatile);
        {
            let mut c = ctx(&mut o, LbmMode::Volatile);
            c.write(N0, P, 40, &[3]).unwrap();
            c.flush_page(N0, P).unwrap();
            c.write(N0, P, 40, &[4]).unwrap(); // dirty again, only on n0
        }
        o.m.crash(&[N0]);
        {
            let mut c = ctx(&mut o, LbmMode::Volatile);
            assert!(c.page_has_lost_lines(P));
            c.install_page_from_stable(N1, P).unwrap();
            assert!(!c.page_has_lost_lines(P));
            let mut buf = [0u8; 1];
            c.read(N1, P, 40, &mut buf).unwrap();
            assert_eq!(buf[0], 3, "reinstalled from the last flushed image");
        }
    }
}
