//! Model-based property tests: the shared-memory B+-tree against a
//! `BTreeMap` reference model, under random multi-node op sequences with
//! commit/abort processing, plus structural invariants after every
//! operation batch.

use proptest::prelude::*;
use smdb_btree::{BTree, BtreeError, TreeCtx, NULL_TAG, VAL_SIZE};
use smdb_sim::{Machine, NodeId, SimConfig, TxnId};
use smdb_storage::{PageGeometry, StableDb};
use smdb_wal::{LbmMode, LogSet, PageLsnTable};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    /// Insert key (value derived from key); committed immediately.
    InsertCommit { node: u16, key: u64 },
    /// Insert then roll back.
    InsertAbort { node: u16, key: u64 },
    /// Delete an existing key (if any); committed immediately.
    DeleteCommit { node: u16, key_idx: usize },
    /// Delete an existing key then roll back.
    DeleteAbort { node: u16, key_idx: usize },
    /// Point lookup of an arbitrary key.
    Lookup { node: u16, key: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0u64..200;
    prop_oneof![
        4 => (0u16..3, key.clone()).prop_map(|(node, key)| Op::InsertCommit { node, key }),
        2 => (0u16..3, key.clone()).prop_map(|(node, key)| Op::InsertAbort { node, key }),
        2 => (0u16..3, any::<prop::sample::Index>())
            .prop_map(|(node, i)| Op::DeleteCommit { node, key_idx: i.index(1 << 16) }),
        1 => (0u16..3, any::<prop::sample::Index>())
            .prop_map(|(node, i)| Op::DeleteAbort { node, key_idx: i.index(1 << 16) }),
        2 => (0u16..3, key).prop_map(|(node, key)| Op::Lookup { node, key }),
    ]
}

fn val_for(key: u64) -> [u8; VAL_SIZE] {
    (key * 31 + 7).to_le_bytes()
}

struct Owned {
    m: Machine,
    db: StableDb,
    logs: LogSet,
    plt: PageLsnTable,
    gsn: u64,
}

macro_rules! ctx {
    ($o:expr) => {
        TreeCtx::new(
            &mut $o.m,
            &mut $o.db,
            &mut $o.logs,
            &mut $o.plt,
            LbmMode::Volatile,
            &mut $o.gsn,
        )
    };
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn tree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut o = Owned {
            m: Machine::new(SimConfig::new(3)),
            db: {
                let mut db = StableDb::new(PageGeometry::new(128, 8));
                db.format(64);
                db
            },
            logs: LogSet::new(3),
            plt: PageLsnTable::new(),
            gsn: 0,
        };
        let mut c = ctx!(o);
        let mut tree = BTree::create(&mut c, NodeId(0), 10, 50).expect("create");
        let mut model: BTreeMap<u64, [u8; VAL_SIZE]> = BTreeMap::new();
        let mut seq = 0u64;
        for op in ops {
            seq += 1;
            match op {
                Op::InsertCommit { node, key } => {
                    let txn = TxnId::new(NodeId(node), seq);
                    match tree.insert(&mut c, txn, key, val_for(key)) {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(&key), "insert succeeded on live key");
                            tree.commit_key(&mut c, txn, key).expect("commit");
                            model.insert(key, val_for(key));
                        }
                        Err(BtreeError::DuplicateKey { .. }) => {
                            prop_assert!(model.contains_key(&key), "spurious duplicate");
                        }
                        Err(BtreeError::TreeFull) => return Ok(()),
                        Err(e) => return Err(TestCaseError::fail(format!("insert: {e}"))),
                    }
                }
                Op::InsertAbort { node, key } => {
                    let txn = TxnId::new(NodeId(node), seq);
                    match tree.insert(&mut c, txn, key, val_for(key)) {
                        Ok(()) => {
                            tree.undo_insert(&mut c, NodeId(node), key).expect("undo");
                            // Model unchanged.
                        }
                        Err(BtreeError::DuplicateKey { .. }) => {}
                        Err(BtreeError::TreeFull) => return Ok(()),
                        Err(e) => return Err(TestCaseError::fail(format!("insert: {e}"))),
                    }
                }
                Op::DeleteCommit { node, key_idx } => {
                    let Some(&key) = model.keys().nth(key_idx % model.len().max(1)) else {
                        continue;
                    };
                    let txn = TxnId::new(NodeId(node), seq);
                    tree.delete(&mut c, txn, key).expect("delete of live key");
                    tree.commit_key(&mut c, txn, key).expect("commit");
                    model.remove(&key);
                }
                Op::DeleteAbort { node, key_idx } => {
                    let Some(&key) = model.keys().nth(key_idx % model.len().max(1)) else {
                        continue;
                    };
                    let txn = TxnId::new(NodeId(node), seq);
                    tree.delete(&mut c, txn, key).expect("delete of live key");
                    tree.undo_delete(&mut c, NodeId(node), key).expect("undo");
                    // Model unchanged; the entry must be live again with a
                    // clean tag.
                    let hit = tree.search(&mut c, NodeId(node), key).expect("search").expect("live");
                    prop_assert_eq!(hit.entry.tag, NULL_TAG);
                }
                Op::Lookup { node, key } => {
                    let hit = tree.search(&mut c, NodeId(node), key).expect("search");
                    match (hit, model.get(&key)) {
                        (Some(h), Some(v)) => prop_assert_eq!(&h.entry.value, v),
                        (None, None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "lookup {key}: got {:?}, want {:?}",
                                got.map(|h| h.entry.value),
                                want
                            )))
                        }
                    }
                }
            }
        }
        // Final full comparison + structural invariants.
        let live: BTreeMap<u64, [u8; VAL_SIZE]> =
            tree.scan_live(&mut c, NodeId(0)).expect("scan").into_iter().collect();
        prop_assert_eq!(live, model);
        tree.check_invariants(&mut c, NodeId(0)).expect("invariants");
    }
}
