//! E8-fwd acceptance gate: the forward-path fast lane must actually pay
//! off against the pre-optimisation engine.
//!
//! The baselines below were measured on the tree *before* the flat lock
//! table, allocation-free WAL append, and coalesced log forces landed
//! (TP1, 8 nodes, 200 transactions, default seed). They are simulated
//! cycles per committed transaction, so they are exactly reproducible —
//! no wall-clock noise — and any regression that pushes the optimised
//! engine back toward these numbers trips the gate deterministically.

use smdb_bench::experiments::{e8_forward_throughput, ForwardPoint};

const TXNS: usize = 200;

/// Pre-PR cycles/txn by protocol (TP1, 8 nodes, 200 txns).
fn pre_pr_cycles_per_txn(protocol: &str) -> u64 {
    match protocol {
        "VolatileRedoAll" => 163_264,
        "VolatileSelectiveRedo" => 163_268,
        "StableEager" => 663_264,
        "StableTriggered" => 288_264,
        other => panic!("no pre-PR baseline for protocol {other}"),
    }
}

fn coalesced(points: &[ForwardPoint], protocol: &str) -> ForwardPoint {
    points
        .iter()
        .find(|p| p.protocol == protocol && p.coalesce)
        .unwrap_or_else(|| panic!("missing coalesced point for {protocol}"))
        .clone()
}

#[test]
fn e8_forward_fast_lane_beats_pre_pr_baseline() {
    let points = e8_forward_throughput(TXNS);

    // Every cell must have done real work and kept the physical-force
    // count within the request count (coalescing can only drop forces).
    for p in &points {
        assert!(p.committed > 0, "{p:?} committed nothing");
        assert!(p.physical_forces <= p.forces_requested, "{p:?}: physical forces exceed requests");
        if !p.coalesce {
            assert_eq!(
                p.physical_forces, p.forces_requested,
                "{p:?}: without coalescing every request is physical"
            );
        }
    }

    // Tentpole gate: at least one IFA protocol runs >= 1.5x faster
    // (cycles/txn) with the fast lane on than the pre-PR engine did.
    // Integer form of `pre / on >= 1.5`: 2*pre >= 3*on.
    let winners: Vec<&ForwardPoint> = points
        .iter()
        .filter(|p| p.coalesce)
        .filter(|p| 2 * pre_pr_cycles_per_txn(&p.protocol) >= 3 * p.cycles_per_txn)
        .collect();
    assert!(
        !winners.is_empty(),
        "no IFA protocol improved >= 1.5x over the pre-PR baseline: {points:#?}"
    );

    // Coalescing gate: StableEager must absorb at least half its force
    // requests into the pending window (2*physical <= requested).
    let se = coalesced(&points, "StableEager");
    assert!(se.forces_requested > 0, "StableEager made no force requests: {se:?}");
    assert!(
        2 * se.physical_forces <= se.forces_requested,
        "StableEager coalescing absorbed too little: {se:?}"
    );
}

#[test]
fn e8_forward_coalescing_preserves_durability_volume() {
    // Coalescing changes *when* records reach the stable log, not
    // whether they do: across a full run each committed transaction's
    // records still hit the platter, so the volume forced by the
    // commit-time forces is unchanged for the volatile protocols (which
    // never force from the LBM path at all).
    let points = e8_forward_throughput(TXNS);
    for proto in ["VolatileRedoAll", "VolatileSelectiveRedo"] {
        let off =
            points.iter().find(|p| p.protocol == proto && !p.coalesce).expect("uncoalesced point");
        let on = coalesced(&points, proto);
        assert_eq!(off.committed, on.committed, "{proto}: txn count must match");
        assert_eq!(
            off.records_forced, on.records_forced,
            "{proto}: coalescing must not change the records made durable"
        );
        assert_eq!(
            off.physical_forces, on.physical_forces,
            "{proto}: volatile protocols have no LBM forces to coalesce"
        );
    }
}
