//! Golden-file tests for the observability exporters.
//!
//! One fixed, seeded mix-with-crash scenario drives both exporters:
//!
//! - the Chrome trace-event JSON (`chrome_trace` over the event bus and
//!   the finished transaction spans), and
//! - the availability-timeline CSV (`Timeline::to_csv`).
//!
//! Both are compared byte-for-byte against committed fixtures — the
//! exporters promise deterministic output for a deterministic run
//! (fixed field order, wall-clock fields excluded), and these tests are
//! the enforcement. A third test pins the availability semantics: after
//! a mid-stream crash and recovery, the timeline must yield a positive
//! time-to-first-transaction.
//!
//! Regenerate (only when an *intentional* format or behaviour change
//! occurs) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p smdb-bench --test exporter_golden
//! ```

use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_sim::NodeId;
use smdb_workload::{run_mix_with_crash, CrashPlan, MixParams};

/// Bus ring capacity for the scenario: small enough to keep the fixture
/// reviewable, large enough that the backlog spans the crash and the
/// recovery phases.
const BUS_CAPACITY: usize = 256;

fn fixture(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// The scenario: 8 nodes, Stable-Triggered (exercises LBM-triggered
/// forces on the bus), 20 mixed transactions with node 0 crashing after
/// the 10th commit, recovery, then the remaining 10 transactions.
fn scenario() -> SmDb {
    let mut db = SmDb::new(DbConfig::bench(8, ProtocolKind::StableTriggered));
    db.enable_observability(BUS_CAPACITY);
    let plan = CrashPlan { after_txns: 10, nodes: vec![NodeId(0)] };
    let params = MixParams { txns: 20, sharing: 0.5, read_fraction: 0.25, ..Default::default() };
    let (report, outcome) =
        run_mix_with_crash(&mut db, params, Some(plan)).expect("mix with crash");
    assert!(report.crash_fired && outcome.is_some(), "the crash plan must fire");
    db
}

fn check_golden(name: &str, got: &str) {
    let path = fixture(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir fixtures");
        std::fs::write(&path, got).expect("write fixture");
        eprintln!("rewrote {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with UPDATE_GOLDEN=1", path.display())
    });
    if got != want {
        let (mut line_no, mut context) = (0usize, String::new());
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                line_no = i + 1;
                context = format!("got:  {g}\nwant: {w}");
                break;
            }
        }
        if context.is_empty() {
            context = format!(
                "line-count mismatch: got {} lines, fixture {} lines",
                got.lines().count(),
                want.lines().count()
            );
        }
        panic!(
            "{name} diverged from fixture at line {line_no}:\n{context}\n\
             (exporter output must be byte-deterministic; regenerate with \
             UPDATE_GOLDEN=1 only for intentional changes)"
        );
    }
}

#[test]
fn chrome_trace_matches_golden() {
    let db = scenario();
    let json = db.observability().export_chrome_trace();
    // Structural sanity before the byte diff: the trace must carry both
    // process tracks, at least one bus instant, and at least one span.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.contains("\"name\":\"event bus\""));
    assert!(json.contains("\"name\":\"transactions\""));
    assert!(json.contains("\"cat\":\"bus\""));
    assert!(json.contains("\"cat\":\"txn\""));
    check_golden("chrome_trace.golden", &json);
}

#[test]
fn timeline_csv_matches_golden() {
    let db = scenario();
    let csv = db.observability().timeline.to_csv();
    let header = csv.lines().next().expect("csv has a header");
    assert_eq!(
        header,
        "bucket_start,begins,commits,aborts,crashes,in_flight_max,latency_sum,\
         latency_count,scan_records,redo_applied,redo_planned"
    );
    assert!(csv.lines().count() > 1, "timeline sampled no buckets");
    check_golden("timeline.golden.csv", &csv);
}

#[test]
fn exporters_are_run_to_run_deterministic() {
    // Independent of the fixtures: two identical runs must export
    // identical bytes (no iteration-order, allocation, or wall-clock
    // leakage).
    let a = scenario();
    let b = scenario();
    assert_eq!(
        a.observability().export_chrome_trace(),
        b.observability().export_chrome_trace(),
        "chrome trace differs between identical runs"
    );
    assert_eq!(
        a.observability().timeline.to_csv(),
        b.observability().timeline.to_csv(),
        "timeline csv differs between identical runs"
    );
}

#[test]
fn crash_timeline_yields_time_to_first_txn() {
    let db = scenario();
    let tl = db.observability().timeline;
    let crash_at = tl.last_crash_at().expect("crash marker recorded");
    let recovered_at = tl.last_recovery_end().expect("recovery-end marker recorded");
    assert!(recovered_at > crash_at, "recovery must take simulated time");
    let ttft = tl.time_to_first_txn().expect("a transaction committed after recovery");
    // The first post-recovery commit cannot land before recovery ends.
    assert!(ttft >= recovered_at - crash_at, "ttft {ttft} < recovery span");
    // And the availability ring must have seen the recovery progress
    // gauges move.
    let buckets = tl.snapshot();
    assert!(buckets.iter().any(|b| b.redo_planned > 0 || b.scan_records > 0));
    assert!(buckets.iter().any(|b| b.commits > 0));
}
