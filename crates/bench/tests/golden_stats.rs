//! Golden-stats equivalence test for the flat-structure refactor.
//!
//! Runs the E3 (recovery cost) and E4 (log forces) scenarios on fixed
//! seeds and serialises every observable statistic — `SimStats`,
//! `EngineStats`, and the recovery outcome — into a canonical text form,
//! compared byte-for-byte against a committed fixture. The fixture was
//! generated from the `BTreeMap`-based simulator, so a passing run proves
//! the dense slot-array/open-addressed-index hot path is
//! behaviour-preserving: same coherence traffic, same clock charges, same
//! recovery work, for the exact workloads the paper reproduction reports.
//!
//! Regenerate (only when an *intentional* behaviour change occurs) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p smdb-bench --test golden_stats
//! ```

use smdb_core::{DbConfig, ProtocolKind, RecoveryOutcome, SmDb};
use smdb_sim::NodeId;
use smdb_workload::{run_mix, spawn_active, MixParams};
use std::fmt::Write as _;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/e3_e4_stats.golden")
}

fn render_outcome(out: &mut String, o: &RecoveryOutcome) {
    let _ = writeln!(out, "outcome.crashed: {:?}", o.crashed);
    let _ = writeln!(out, "outcome.aborted: {:?}", o.aborted);
    let _ = writeln!(out, "outcome.preserved_active: {:?}", o.preserved_active);
    let _ = writeln!(out, "outcome.lost_lines: {}", o.lost_lines);
    let _ = writeln!(out, "outcome.redo_applied: {}", o.redo_applied);
    let _ = writeln!(out, "outcome.redo_skipped_cached: {}", o.redo_skipped_cached);
    let _ = writeln!(out, "outcome.redo_skipped_stable: {}", o.redo_skipped_stable);
    let _ = writeln!(out, "outcome.redo_superseded: {}", o.redo_superseded);
    let _ = writeln!(out, "outcome.scan_records: {}", o.scan_records);
    let _ = writeln!(out, "outcome.ckpt_bound_lsn: {}", o.ckpt_bound_lsn);
    let _ = writeln!(out, "outcome.index_redo_applied: {}", o.index_redo_applied);
    let _ = writeln!(out, "outcome.undo_records_applied: {}", o.undo_records_applied);
    let _ = writeln!(out, "outcome.tags_cleared: {}", o.tags_cleared);
    let _ = writeln!(out, "outcome.stable_undo_patches: {}", o.stable_undo_patches);
    let _ = writeln!(out, "outcome.lock_recovery: {:?}", o.lock_recovery);
    let _ = writeln!(out, "outcome.btree_recovery: {:?}", o.btree_recovery);
    let _ = writeln!(out, "outcome.recovery_cycles: {}", o.recovery_cycles);
    for p in &o.phases {
        // wall_ns deliberately excluded: host time is not deterministic.
        let _ = writeln!(out, "outcome.phase.{}: {} cycles", p.phase, p.sim_cycles);
    }
}

fn render_db(out: &mut String, db: &SmDb) {
    let _ = writeln!(out, "sim: {:?}", db.machine().stats());
    let _ = writeln!(out, "engine: {:?}", db.stats());
    let _ = writeln!(out, "max_clock: {}", db.machine().max_clock());
    let _ = writeln!(out, "log_forces: {}", db.total_log_forces());
}

/// The E3 scenario, verbatim from `smdb_bench::e3_recovery_cost` but with
/// full stats capture.
fn golden_e3(out: &mut String) {
    for sharing in [0.1, 0.9] {
        for p in [ProtocolKind::VolatileRedoAll, ProtocolKind::VolatileSelectiveRedo] {
            let _ = writeln!(out, "[e3 protocol={p:?} sharing={sharing}]");
            let mut db = SmDb::new(DbConfig::bench(8, p));
            run_mix(
                &mut db,
                MixParams { txns: 60, sharing, read_fraction: 0.2, ..Default::default() },
            );
            let _ = spawn_active(&mut db, 2, 2, true, 5);
            let outcome = db.crash_and_recover(&[NodeId(0)]).expect("recovery");
            db.check_ifa(NodeId(1)).assert_ok();
            render_outcome(out, &outcome);
            render_db(out, &db);
            let _ = writeln!(out);
        }
    }
}

/// The E4 scenario, verbatim from `smdb_bench::e4_log_forces` with full
/// stats capture (no crash: this pins the normal-operation hot path).
fn golden_e4(out: &mut String) {
    for sharing in [0.0, 1.0] {
        for p in ProtocolKind::ifa_protocols() {
            let _ = writeln!(out, "[e4 protocol={p:?} sharing={sharing}]");
            let mut db = SmDb::new(DbConfig::bench(8, p).without_index());
            let report = run_mix(
                &mut db,
                MixParams { txns: 60, sharing, read_fraction: 0.3, ..Default::default() },
            );
            let _ = writeln!(out, "committed: {}", report.committed);
            let _ = writeln!(out, "report_cycles: {}", report.sim_cycles);
            render_db(out, &db);
            let _ = writeln!(out);
        }
    }
}

#[test]
fn golden_e3_e4_stats_equivalence() {
    let mut got = String::new();
    golden_e3(&mut got);
    golden_e4(&mut got);

    let path = fixture_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir fixtures");
        std::fs::write(&path, &got).expect("write fixture");
        eprintln!("rewrote {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); run with UPDATE_GOLDEN=1", path.display())
    });
    if got != want {
        // Find the first diverging line for a readable failure.
        let (mut line_no, mut context) = (0usize, String::new());
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                line_no = i + 1;
                context = format!("got:  {g}\nwant: {w}");
                break;
            }
        }
        if context.is_empty() {
            context = format!(
                "line-count mismatch: got {} lines, fixture {} lines",
                got.lines().count(),
                want.lines().count()
            );
        }
        panic!(
            "golden stats diverged from fixture at line {line_no}:\n{context}\n\
             (the flat-structure hot path must be behaviour-preserving; \
             regenerate with UPDATE_GOLDEN=1 only for intentional changes)"
        );
    }
}
