//! E10-elr acceptance gate: early lock release + pipelined group commit
//! must pay off under contention without changing what becomes durable.
//!
//! The high-contention Zipf TP1 cell serialises the whole commit window
//! behind a handful of hot record locks. Under strict 2PL those locks
//! only come off once the commit force completes, so every hot
//! transaction eats a force latency; controlled lock violation releases
//! them at commit-record *append*, letting successors run inside the
//! force window and the coalesced group force amortise across the
//! pipeline. The gate is comparative — both cells run in-process on the
//! identical operation stream — so it holds on any host.

use smdb_bench::{e10_elr, ElrPoint};

const TXNS: usize = 200;

fn cells() -> Vec<ElrPoint> {
    e10_elr(TXNS)
}

fn pair<'a>(pts: &'a [ElrPoint], protocol: &str) -> (&'a ElrPoint, &'a ElrPoint) {
    let off = pts.iter().find(|p| p.protocol == protocol && !p.elr).expect("off cell");
    let on = pts.iter().find(|p| p.protocol == protocol && p.elr).expect("on cell");
    (off, on)
}

#[test]
fn stable_eager_elr_speedup_is_at_least_1_5x() {
    let pts = cells();
    let (off, on) = pair(&pts, "StableEager");
    assert_eq!(off.committed, TXNS as u64, "{off:?}");
    assert_eq!(on.committed, TXNS as u64, "{on:?}");
    // cycles/txn(off) >= 1.5 * cycles/txn(on), in integer arithmetic.
    assert!(
        2 * off.cycles_per_txn >= 3 * on.cycles_per_txn,
        "ELR speedup below 1.5x on StableEager: off={} on={}",
        off.cycles_per_txn,
        on.cycles_per_txn
    );
}

#[test]
fn elr_reduces_lock_wait_cycles_on_every_protocol() {
    let pts = cells();
    for p in ["VolatileRedoAll", "VolatileSelectiveRedo", "StableEager", "StableTriggered"] {
        let (off, on) = pair(&pts, p);
        assert!(off.lock_stalls > 0, "cell must actually contend: {off:?}");
        assert!(
            on.lock_wait_cycles < off.lock_wait_cycles,
            "{p}: lock-wait cycles did not drop: off={} on={}",
            off.lock_wait_cycles,
            on.lock_wait_cycles
        );
    }
}

#[test]
fn elr_does_not_change_durability_volume() {
    let pts = cells();
    for p in ["VolatileRedoAll", "VolatileSelectiveRedo", "StableEager", "StableTriggered"] {
        let (off, on) = pair(&pts, p);
        assert_eq!(off.committed, on.committed, "{p}: committed counts diverged");
        assert_eq!(
            off.records_forced, on.records_forced,
            "{p}: records forced diverged between lock policies"
        );
    }
}

#[test]
fn violation_machinery_is_exercised_and_clean() {
    let pts = cells();
    for p in ["VolatileRedoAll", "VolatileSelectiveRedo", "StableEager", "StableTriggered"] {
        let (off, on) = pair(&pts, p);
        assert_eq!(off.early_released, 0, "{off:?}");
        assert_eq!(off.commit_deps, 0, "{off:?}");
        assert!(on.early_released > 0, "hot locks must be violated: {on:?}");
        assert!(on.commit_deps > 0, "successors must inherit deps: {on:?}");
        assert_eq!(on.dep_aborts, 0, "crash-free run must not cascade: {on:?}");
    }
}
