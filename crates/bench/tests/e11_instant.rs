//! E11 acceptance gate: instant restart must reach its first post-crash
//! commit ≥5× sooner than the stop-the-world eager restart on an
//! E7b-scale history, while converging to a byte-identical end state and
//! performing the same total redo work (within 10%).
//!
//! All gates run on deterministic simulated quantities — TTFT in
//! simulated cycles, redo counts, and value digests — never wall-clock.

use smdb_bench::e11_instant_restart;

#[test]
fn instant_restart_opens_5x_sooner_with_identical_end_state() {
    let pts = e11_instant_restart(600, 50);
    assert_eq!(pts.len(), 8, "4 IFA protocols x {{eager, instant}}");
    for pair in pts.chunks(2) {
        let (eager, instant) = (&pair[0], &pair[1]);
        assert_eq!(eager.protocol, instant.protocol);
        assert!(!eager.instant && instant.instant, "{}: cell order", eager.protocol);
        println!(
            "{}: ttft {} -> {} ({}x), recovery {} -> {}, redo {} -> {} \
             (on-demand {}, background {}, stable-skip {})",
            eager.protocol,
            eager.ttft_cycles,
            instant.ttft_cycles,
            eager.ttft_cycles / instant.ttft_cycles.max(1),
            eager.recovery_cycles,
            instant.recovery_cycles,
            eager.redo_total,
            instant.redo_total,
            instant.redo_on_demand,
            instant.redo_background,
            instant.redo_skipped_stable
        );
        // Headline availability gate: >= 5x lower time-to-first-txn.
        assert!(
            instant.ttft_cycles * 5 <= eager.ttft_cycles,
            "{}: TTFT {} -> {} cycles, expected >= 5x lower",
            eager.protocol,
            eager.ttft_cycles,
            instant.ttft_cycles
        );
        // The drain actually ran and did deferred work.
        assert!(
            instant.redo_on_demand + instant.redo_background > 0,
            "{}: no deferred redo was applied",
            eager.protocol
        );
        // End-state equivalence: byte-identical to eager, and both match
        // the committed-data shadow oracle.
        assert_eq!(
            eager.state_digest, instant.state_digest,
            "{}: drained end state diverged from eager recovery",
            eager.protocol
        );
        assert!(eager.matches_committed, "{}: eager state vs oracle", eager.protocol);
        assert!(instant.matches_committed, "{}: instant state vs oracle", eager.protocol);
        // Total redo work within 10% of the eager pass: deferral shifts
        // the work in time, it must not multiply it.
        let (a, b) = (eager.redo_total, instant.redo_total);
        assert!(
            10 * a.abs_diff(b) <= a.max(b),
            "{}: redo work {} -> {}, expected within 10%",
            eager.protocol,
            a,
            b
        );
    }
}
