//! E9-lat acceptance gate: span attribution must account for a
//! transaction's cycles, and the latency distributions must show the
//! protocol physics the paper predicts.
//!
//! Two properties are checked:
//!
//! 1. **Attribution invariant** — per protocol, the five stage-cycle
//!    totals (lock-wait, execute, log-append, force-wait, commit) sum to
//!    within 5% of the total end-to-end latency cycles. Execute is
//!    defined as the home-clock remainder, so the invariant can only
//!    break if a stage double-counts cycles or a span leaks cycles spent
//!    on *other* nodes' clocks (participant forces and migration-trigger
//!    forces are deliberately unattributed and must not appear here).
//!
//! 2. **Protocol tail ordering** — StableEager forces the log on every
//!    LBM update boundary (Table 1's "higher frequency of log forces"),
//!    so its p99 latency must sit above the volatile protocols', and the
//!    extra cycles must be visible in its force-wait stage.

use smdb_bench::experiments::{e9_latency, LatencyPoint};

const TXNS: usize = 200;

fn point<'a>(points: &'a [LatencyPoint], protocol: &str) -> &'a LatencyPoint {
    points
        .iter()
        .find(|p| p.protocol == protocol)
        .unwrap_or_else(|| panic!("missing latency point for {protocol}"))
}

#[test]
fn e9_stage_attribution_accounts_for_txn_latency() {
    let points = e9_latency(TXNS);
    assert_eq!(points.len(), 4, "one point per IFA protocol");
    for p in &points {
        assert!(p.committed > 0, "{p:?} committed nothing");
        assert!(p.total_latency_cycles > 0, "{p:?} recorded no latency");
        let attributed = p.lock_wait_cycles
            + p.execute_cycles
            + p.log_append_cycles
            + p.force_wait_cycles
            + p.commit_cycles;
        let total = p.total_latency_cycles;
        let diff = attributed.abs_diff(total);
        assert!(
            20 * diff <= total,
            "{}: stage sum {attributed} vs total {total} differs by more than 5%",
            p.protocol
        );
        // Percentiles must be ordered (clamp semantics preserve this even
        // for degenerate inputs).
        assert!(p.p50_cycles <= p.p99_cycles && p.p99_cycles <= p.p999_cycles, "{p:?}");
    }
}

#[test]
fn e9_stable_eager_pays_its_forces_in_the_tail() {
    let points = e9_latency(TXNS);
    let eager = point(&points, "StableEager");
    let sel = point(&points, "VolatileSelectiveRedo");
    let all = point(&points, "VolatileRedoAll");

    // The eager LBM forces on every update boundary; the volatile LBMs
    // never force outside commit. That cost must surface in the tail...
    assert!(
        eager.p99_cycles > sel.p99_cycles,
        "StableEager p99 ({}) must exceed VolatileSelectiveRedo p99 ({})",
        eager.p99_cycles,
        sel.p99_cycles
    );
    assert!(
        eager.p99_cycles > all.p99_cycles,
        "StableEager p99 ({}) must exceed VolatileRedoAll p99 ({})",
        eager.p99_cycles,
        all.p99_cycles
    );
    // ...and be attributed to the force-wait stage, not smeared into
    // execute or commit.
    assert!(
        eager.force_wait_cycles > sel.force_wait_cycles,
        "StableEager force-wait ({}) must exceed VolatileSelectiveRedo's ({})",
        eager.force_wait_cycles,
        sel.force_wait_cycles
    );
}
