//! E7b acceptance gate: checkpoint-bounded restart must beat the
//! unbounded (pre-checkpoint) restart by ≥1.5× on long histories.
//!
//! The gates run on the deterministic simulated quantities — recovery
//! cycles and records scanned — never wall-clock, so they hold on any
//! host. History lengths are ≥8× the checkpoint interval, where the
//! retained-log difference dominates the fixed recovery costs.

use smdb_bench::e7_recovery_scaling;

const INTERVAL: usize = 25;

#[test]
fn checkpointed_recovery_beats_unbounded_by_1_5x_on_long_histories() {
    // 200 txns = 8× the checkpoint interval.
    let pts = e7_recovery_scaling(&[8 * INTERVAL], INTERVAL);
    assert_eq!(pts.len(), 8, "4 IFA protocols × {{0, interval}}");
    for pair in pts.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        assert_eq!(off.protocol, on.protocol);
        assert_eq!(off.checkpoint_every, 0);
        assert_eq!(on.checkpoint_every, INTERVAL);
        // Checkpoints were actually taken and bounded the redo scan.
        assert!(on.ckpt_bound_lsn > 0, "{}: no checkpoint bound", on.protocol);
        // The analysis scan shrinks to roughly one interval's tail: the
        // truncated prefix is physically gone from the stable logs.
        assert!(
            off.scan_records >= 2 * on.scan_records,
            "{}: scan {} -> {} records, expected >= 2x fewer",
            on.protocol,
            off.scan_records,
            on.scan_records
        );
        // The headline gate: >= 1.5x cheaper recovery (in simulated
        // cycles, scan + redo + fixed phases included).
        assert!(
            2 * off.recovery_cycles >= 3 * on.recovery_cycles,
            "{}: recovery {} -> {} cycles, expected >= 1.5x cheaper",
            on.protocol,
            off.recovery_cycles,
            on.recovery_cycles
        );
    }
}

#[test]
fn checkpointed_scan_plateaus_as_history_grows() {
    // Doubling the history (8x -> 16x the interval) must leave the
    // checkpoint-bounded scan flat while the unbounded scan ~doubles.
    let pts = e7_recovery_scaling(&[8 * INTERVAL, 16 * INTERVAL], INTERVAL);
    let scan = |history: usize, ckpt: usize| -> u64 {
        pts.iter()
            .filter(|p| p.history_txns == history && p.checkpoint_every == ckpt)
            .map(|p| p.scan_records)
            .max()
            .expect("cell present")
    };
    let (short_off, long_off) = (scan(8 * INTERVAL, 0), scan(16 * INTERVAL, 0));
    let (short_on, long_on) = (scan(8 * INTERVAL, INTERVAL), scan(16 * INTERVAL, INTERVAL));
    assert!(
        long_off * 10 >= short_off * 15,
        "unbounded scan should grow with history: {short_off} -> {long_off}"
    );
    assert!(
        long_on * 10 <= short_on.max(1) * 15,
        "bounded scan should plateau: {short_on} -> {long_on}"
    );
}
