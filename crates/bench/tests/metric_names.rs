//! Catalogue-membership gate for metric names.
//!
//! Every metric the engine emits must be declared in `obs::names` — one
//! compile-time catalog with kind, layer, and meaning. This test runs a
//! workload chosen to light up every emission site (TP1 with index
//! history, a sharing-heavy mix with checkpoints, a crash, and a full
//! recovery) and then checks that every name appearing in the registry
//! snapshot is catalogued with the right kind. A second test keeps the
//! DESIGN.md metric table literally in sync with the catalog.

use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_obs::names;
use smdb_sim::NodeId;
use smdb_workload::{run_mix, run_mix_mt, run_tp1, spawn_active, MixParams, Tp1Params};

/// Drive every layer that emits metrics: TP1 (engine, lock, WAL, sim),
/// a checkpointed sharing-heavy mix (LBM forces, coalescing, buffer
/// traffic), live transactions at a crash, and restart recovery.
fn representative_run() -> SmDb {
    let mut db = SmDb::new(DbConfig::bench(8, ProtocolKind::StableEager));
    db.enable_observability(0);
    run_tp1(&mut db, Tp1Params { txns: 40, ..Default::default() });
    run_mix(
        &mut db,
        MixParams { txns: 40, sharing: 0.8, checkpoint_every: 16, ..Default::default() },
    );
    let _ = spawn_active(&mut db, 2, 2, true, 5);
    db.crash_and_recover(&[NodeId(0)]).expect("recovery");
    db
}

#[test]
fn every_emitted_metric_is_catalogued() {
    let db = representative_run();
    let snap = db.observability().metrics.snapshot();
    let total = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
    assert!(total > 0, "the representative run emitted no metrics");
    for (name, _) in &snap.counters {
        let def = names::lookup(name)
            .unwrap_or_else(|| panic!("counter `{name}` missing from obs::names::CATALOG"));
        assert_eq!(def.kind, names::MetricKind::Counter, "`{name}` kind mismatch");
    }
    for (name, _) in &snap.gauges {
        let def = names::lookup(name)
            .unwrap_or_else(|| panic!("gauge `{name}` missing from obs::names::CATALOG"));
        assert_eq!(def.kind, names::MetricKind::Gauge, "`{name}` kind mismatch");
    }
    for (name, _) in &snap.histograms {
        let def = names::lookup(name)
            .unwrap_or_else(|| panic!("histogram `{name}` missing from obs::names::CATALOG"));
        assert_eq!(def.kind, names::MetricKind::Histogram, "`{name}` kind mismatch");
    }
}

#[test]
fn representative_run_covers_most_of_the_catalog() {
    // The catalog must not accumulate dead names: the representative run
    // is expected to touch nearly all of it. (Not 100% — a few phase
    // histograms are protocol-specific.)
    let db = representative_run();
    let snap = db.observability().metrics.snapshot();
    let emitted: std::collections::BTreeSet<&str> = snap
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .chain(snap.gauges.iter().map(|(n, _)| n.as_str()))
        .chain(snap.histograms.iter().map(|(n, _)| n.as_str()))
        .collect();
    let missing: Vec<&str> =
        names::CATALOG.iter().map(|d| d.name).filter(|n| !emitted.contains(n)).collect();
    assert!(
        missing.len() * 2 <= names::CATALOG.len(),
        "over half the catalog never fired in the representative run: {missing:?}"
    );
}

#[test]
fn instant_restart_counters_fire_and_are_catalogued() {
    // The instant-restart triple never fires in the eager representative
    // run: light it up explicitly — open early, take one on-demand hit,
    // drain the rest in the background.
    let mut db =
        SmDb::new(DbConfig::bench(8, ProtocolKind::VolatileRedoAll).with_instant_restart());
    db.enable_observability(0);
    run_tp1(&mut db, Tp1Params { txns: 40, ..Default::default() });
    db.crash_and_recover(&[NodeId(0)]).expect("recovery");
    assert!(db.redo_pending() > 0, "the TP1 history must leave deferred redo");
    let t = db.begin(NodeId(1)).unwrap();
    db.read(t, 0).unwrap();
    db.commit(t).unwrap();
    while db.redo_pending() > 0 {
        db.drain_redo(NodeId(1), 64).unwrap();
    }
    let snap = db.observability().metrics.snapshot();
    for name in [
        names::RESTART_OPEN_EARLY_CYCLES,
        names::RESTART_REDO_ON_DEMAND,
        names::RESTART_REDO_BACKGROUND,
    ] {
        assert!(
            snap.counters.iter().any(|(n, v)| n == name && *v > 0),
            "expected counter `{name}` to fire"
        );
        assert!(names::lookup(name).is_some(), "`{name}` missing from CATALOG");
    }
}

#[test]
fn multicore_counters_fire_and_are_catalogued() {
    // The epoch-scheduler quadruple never fires in the serial
    // representative run: light it up with a half-shared Zipf mix under
    // Stable-LBM coalescing on four threads. Hot shared slots collide on
    // record names (`lock.shard_conflicts`), private traffic over eight
    // stripes collides by page hash (`sim.shard_conflicts`), both stall
    // nodes across epochs (`engine.epoch_waits`), and lane commits
    // draining pending coalesced-force windows feed
    // `wal.appender_stalls`.
    let mut db = SmDb::new(
        DbConfig::small(4, ProtocolKind::StableEager).with_sim_shards(8).with_coalesced_forces(),
    );
    db.enable_observability(0);
    let p = MixParams {
        txns: 120,
        ops_per_txn: 4,
        read_fraction: 0.0,
        sharing: 0.5,
        shared_slots: 4,
        zipf_theta: 0.95,
        seed: 0xC0,
        ..Default::default()
    };
    run_mix_mt(&mut db, p, 4).expect("mt run");
    let snap = db.observability().metrics.snapshot();
    for name in [
        names::SIM_SHARD_CONFLICTS,
        names::LOCK_SHARD_CONFLICTS,
        names::ENGINE_EPOCH_WAITS,
        names::WAL_APPENDER_STALLS,
    ] {
        assert!(
            snap.counters.iter().any(|(n, v)| n == name && *v > 0),
            "expected counter `{name}` to fire"
        );
        assert!(names::lookup(name).is_some(), "`{name}` missing from CATALOG");
    }
}

#[test]
fn design_doc_metric_table_is_generated() {
    let design = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md"),
    )
    .expect("read DESIGN.md");
    let table = names::markdown_table();
    assert!(
        design.contains(&table),
        "DESIGN.md metric table is out of sync with obs::names::markdown_table(); \
         paste the generated table into the metric-catalog section"
    );
}
