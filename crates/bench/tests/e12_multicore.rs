//! E12 acceptance gates for the multicore execution engine.
//!
//! Two kinds of gate:
//!
//! * **Structure gates** (always run): the epoch scheduler must pack the
//!   low-contention cell into a few large epochs (that is what creates
//!   parallel work), keep every deterministic column thread-count
//!   invariant, and commit every transaction.
//! * **The wall-clock gate** (runs only on hosts with ≥ 4 cores): the
//!   low-contention cell at 4 threads must beat 1 thread by ≥ 1.6×.
//!   Wall-clock is inherently host-dependent, so on smaller machines the
//!   gate prints a skip message instead of lying with noise.

use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_workload::{run_mix_mt, MixParams};

fn low_contention(txns: usize) -> MixParams {
    MixParams {
        txns,
        ops_per_txn: 4,
        read_fraction: 0.0,
        sharing: 0.0,
        shared_slots: 0,
        zipf_theta: 0.0,
        seed: 0xE12,
        ..Default::default()
    }
}

fn engine() -> SmDb {
    SmDb::new(DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo).with_sim_shards(64))
}

/// Wall-clock for one run at `threads`, best of `reps` (spawn jitter and
/// scheduler noise only ever slow a run down, so min is the right
/// estimator).
fn best_wall(txns: usize, threads: usize, reps: usize) -> std::time::Duration {
    (0..reps)
        .map(|_| {
            let mut db = engine();
            let t0 = std::time::Instant::now();
            let (report, _) = run_mix_mt(&mut db, low_contention(txns), threads).expect("mt run");
            let wall = t0.elapsed();
            assert_eq!(report.committed, txns as u64);
            wall
        })
        .min()
        .expect("reps >= 1")
}

#[test]
fn scheduler_packs_low_contention_work_into_large_epochs() {
    let mut db = engine();
    let (report, out) = run_mix_mt(&mut db, low_contention(400), 2).expect("mt run");
    assert_eq!(report.committed, 400);
    // Parallel speedup requires big epochs: private partitions must not
    // fragment into per-transaction epochs.
    assert!(
        out.epochs <= 10,
        "low-contention run fragmented into {} epochs (max admission {})",
        out.epochs,
        out.max_epoch_txns
    );
    assert!(
        out.max_epoch_txns >= 100,
        "largest epoch admitted only {} of 400 transactions",
        out.max_epoch_txns
    );
    assert_eq!(out.lock_conflicts, 0, "private partitions cannot collide on lock names");
}

#[test]
fn deterministic_columns_are_thread_count_invariant() {
    let runs: Vec<_> = [1usize, 4]
        .iter()
        .map(|&t| {
            let mut db = engine();
            run_mix_mt(&mut db, low_contention(300), t).expect("mt run")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "4-thread run diverged from the 1-thread run");
}

#[test]
fn four_threads_beat_one_by_1_6x_on_low_contention() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        eprintln!(
            "SKIP: e12 wall-clock gate needs >= 4 cores, host has {cores}; \
             structure gates still ran"
        );
        return;
    }
    // Warm up the allocator and page cache, then measure.
    let _ = best_wall(400, 1, 1);
    let serial = best_wall(2000, 1, 2);
    let parallel = best_wall(2000, 4, 2);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 1.6,
        "4 threads over 1: {speedup:.2}x, expected >= 1.6x (serial {serial:?}, \
         parallel {parallel:?})"
    );
}
