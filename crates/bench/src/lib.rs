//! # smdb-bench — experiment harness
//!
//! One function per experiment in `DESIGN.md` §3. Each returns structured
//! data; the `report` binary renders the paper-mapped tables and the
//! Criterion benches in `benches/` wrap the same functions. See
//! `EXPERIMENTS.md` for paper-vs-measured records.

pub mod experiments;
pub mod harness;

pub use experiments::*;
pub use harness::{json_escape, parallel_map, peak_rss_kb};
