//! Parallel experiment harness: fan independent, deterministic experiment
//! cells across OS threads and merge the results in submission order.
//!
//! Every experiment in this crate is a pure function of its parameters
//! (the simulator is fully deterministic), so cells can run on any thread
//! in any order. The harness guarantees the *merged* result vector is in
//! the original cell order regardless of `jobs`, which is what lets the
//! `report` binary promise byte-identical stdout/CSV output for
//! sequential and parallel runs.
//!
//! No external dependencies: `std::thread::scope` plus an atomic
//! work-stealing index.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f` over `items`, `jobs` at a time, returning results in the
/// original item order.
///
/// * `jobs == 1` (or one item) short-circuits to a plain sequential loop
///   on the calling thread — no thread is spawned, so a sequential run is
///   exactly the old code path.
/// * `jobs > 1` spawns `min(jobs, items.len())` scoped workers that pull
///   the next unclaimed index from a shared atomic counter (coarse-grained
///   work stealing: cells have very uneven runtimes).
///
/// Panics in `f` are not isolated: a panicking worker poisons the result
/// mutex and the whole call panics, which is the right behaviour for a
/// benchmark driver (fail loudly, never emit a partial report).
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(n);
    // Items are taken by value, one per cell; results land at the cell's
    // original index so the merge order is fixed.
    let slots: Mutex<Vec<Option<T>>> = Mutex::new(items.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots.lock().expect("cell slots").get_mut(i).and_then(Option::take);
                let item = item.expect("cell claimed once");
                let r = f(i, item);
                results.lock().expect("cell results")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect()
}

/// Peak resident set size of this process in kilobytes, if the platform
/// exposes it (`VmHWM` in `/proc/self/status` on Linux).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

/// Minimal JSON string escaping for the hand-rolled report writer (the
/// container has no serde; names and labels are ASCII identifiers but we
/// escape defensively anyway).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map(items.clone(), 1, |i, x| (i, x * x));
        for jobs in [2, 3, 8, 64] {
            let par = parallel_map(items.clone(), jobs, |i, x| (i, x * x));
            assert_eq!(par, seq, "jobs={jobs} must merge in submission order");
        }
    }

    #[test]
    fn uneven_cell_runtimes_still_merge_in_order() {
        // Later cells finish first (they sleep less); order must hold.
        let items: Vec<u64> = (0..8).collect();
        let out = parallel_map(items, 4, |i, x| {
            std::thread::sleep(std::time::Duration::from_millis(8 - x));
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<usize>>());
    }

    #[test]
    fn empty_and_single_item_edge_cases() {
        assert_eq!(parallel_map(Vec::<u8>::new(), 4, |_, x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![9u8], 4, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        // On Linux this must parse; elsewhere None is acceptable.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb().unwrap_or(0) > 0);
        }
    }
}
