//! Experiment implementations (T1, E1–E8 of `DESIGN.md` §3).

use serde::{Deserialize, Serialize};
use smdb_core::{DbConfig, ProtocolKind, RecoveryOutcome, SmDb};
use smdb_lock::LcbGeometry;
use smdb_obs::Stage;
use smdb_sim::{contended_line_lock_costs, CoherenceKind, CostModel, NodeId};
use smdb_workload::{
    run_mix, run_mix_mt, run_tp1, spawn_active, spawn_active_parallel, MixParams, Tp1Params,
};

/// Standard bench engine: 8 nodes, 4 KiB pages, TP1-capable sizing.
fn bench_db(protocol: ProtocolKind) -> SmDb {
    SmDb::new(DbConfig::bench(8, protocol))
}

// ----------------------------------------------------------------------
// T1 — Table 1: incremental overheads of the IFA protocols
// ----------------------------------------------------------------------

/// Measured overheads for one protocol column of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadRow {
    /// The protocol measured.
    pub protocol: String,
    /// Early-committed structural changes (splits, root growths, lock
    /// overflow allocations).
    pub structural_early_commits: u64,
    /// Read-lock log records appended.
    pub read_lock_records: u64,
    /// Undo-tag writes performed.
    pub undo_tag_writes: u64,
    /// Log forces beyond commit forces and WAL-at-flush forces (the
    /// Stable-LBM "higher frequency of log forces").
    pub lbm_forces: u64,
    /// Commit forces (baseline cost, incurred by any FA scheme).
    pub commit_forces: u64,
    /// Committed transactions (normalisation basis).
    pub committed: u64,
}

/// Run the Table 1 workload (TP1 + index history, moderate sharing) under
/// each IFA protocol and measure the four overhead classes.
pub fn table1_overheads(txns: usize) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for p in ProtocolKind::ifa_protocols() {
        let mut db = bench_db(p);
        let report = run_tp1(&mut db, Tp1Params { txns, ..Default::default() });
        let stats = db.stats();
        let read_locks: u64 = db.logs().iter().map(|l| l.stats().read_lock_records).sum();
        rows.push(OverheadRow {
            protocol: format!("{p:?}"),
            structural_early_commits: stats.structural_early_commits,
            read_lock_records: read_locks,
            undo_tag_writes: stats.undo_tag_writes,
            lbm_forces: stats.lbm_forces,
            commit_forces: stats.commit_forces,
            committed: report.committed,
        });
    }
    rows
}

// ----------------------------------------------------------------------
// E1 — §5.1: line-lock latency vs contention
// ----------------------------------------------------------------------

/// One contention level's line-lock costs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LineLockPoint {
    /// Simultaneous requesters.
    pub contenders: u32,
    /// Mean acquisition latency, µs-equivalents.
    pub mean_us: f64,
    /// Worst (last-served) latency, µs-equivalents.
    pub max_us: f64,
}

/// Sweep line-lock contention from 1 to `max` requesters (§5.1 reports
/// < 10 µs uncontended, < 40 µs at 32-way contention on the KSR-1).
pub fn e1_line_lock_contention(max: u32) -> Vec<LineLockPoint> {
    let cost = CostModel::default();
    (1..=max)
        .map(|k| {
            let o = contended_line_lock_costs(&cost, k);
            LineLockPoint { contenders: k, mean_us: o.mean_us, max_us: o.max_us }
        })
        .collect()
}

// ----------------------------------------------------------------------
// E2 — §1/§3.3: aborts per single-node crash, FA-only vs IFA
// ----------------------------------------------------------------------

/// Abort counts for one machine size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbortCountPoint {
    /// Nodes in the machine.
    pub nodes: u16,
    /// Active transactions at crash time.
    pub active: u64,
    /// Aborts under the FA-only baseline.
    pub fa_only_aborts: u64,
    /// Aborts under an IFA protocol (Volatile LBM + Selective Redo).
    pub ifa_aborts: u64,
}

/// For each machine size, populate every node with `per_node` active
/// transactions, crash one node, and count the aborts under FA-only vs an
/// IFA protocol. The paper's motivating claim: at KSR-1 scale (1,088
/// nodes) a single node failure would otherwise affect thousands of
/// active transactions.
pub fn e2_abort_counts(node_counts: &[u16], per_node: usize) -> Vec<AbortCountPoint> {
    let mut out = Vec::new();
    for &n in node_counts {
        let mut point = AbortCountPoint { nodes: n, active: 0, fa_only_aborts: 0, ifa_aborts: 0 };
        for (ifa, proto) in
            [(false, ProtocolKind::FaOnly), (true, ProtocolKind::VolatileSelectiveRedo)]
        {
            let mut cfg = DbConfig::bench(n, proto);
            cfg.records = (n as u32 * (per_node as u32 + 2) * 4).max(4096);
            cfg.lock_buckets = (n as usize * per_node * 2).max(256);
            cfg.with_index = false;
            let mut db = SmDb::new(cfg);
            let txns = spawn_active(&mut db, per_node, 2, true, 11);
            point.active = txns.len() as u64;
            let outcome = db.crash_and_recover(&[NodeId(n - 1)]).expect("recovery");
            if ifa {
                point.ifa_aborts = outcome.aborted.len() as u64;
            } else {
                point.fa_only_aborts = outcome.aborted.len() as u64;
            }
        }
        out.push(point);
    }
    out
}

// ----------------------------------------------------------------------
// E3 — §4.1.2: Redo All vs Selective Redo recovery cost
// ----------------------------------------------------------------------

/// Recovery-cost measurements for one (protocol, sharing) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryCostPoint {
    /// Protocol measured.
    pub protocol: String,
    /// Workload sharing rate.
    pub sharing: f64,
    /// Heap redo operations applied at recovery.
    pub redo_applied: u64,
    /// Redo candidates skipped via the cached-line probe.
    pub redo_skipped_cached: u64,
    /// Undo operations applied.
    pub undo_applied: u64,
    /// Log records visited by the single analysis scan.
    pub scan_records: u64,
    /// Simulated recovery time, cycles.
    pub recovery_cycles: u64,
    /// Lines destroyed by the crash.
    pub lost_lines: u64,
    /// Per-phase breakdown of `recovery_cycles` (the seven IFA restart
    /// phases; see `RecoveryOutcome::phases`).
    pub phase_stable_undo: u64,
    /// Cycles reinstalling lost lines + index structure.
    pub phase_reinstall: u64,
    /// Cycles discarding survivor caches (Redo All only).
    pub phase_cache_discard: u64,
    /// Cycles in the redo pass.
    pub phase_redo: u64,
    /// Cycles in the undo pass.
    pub phase_undo: u64,
    /// Cycles recovering the lock space.
    pub phase_lock_recovery: u64,
    /// Cycles updating the transaction table.
    pub phase_txn_table: u64,
}

/// Simulated cycles the named recovery phase consumed (0 if absent).
fn phase_cycles(outcome: &RecoveryOutcome, phase: &str) -> u64 {
    outcome.phases.iter().find(|p| p.phase == phase).map(|p| p.sim_cycles).unwrap_or(0)
}

/// Run a mix at each sharing rate, crash one of 8 nodes mid-state, and
/// compare the two volatile restart schemes' recovery work.
pub fn e3_recovery_cost(txns: usize, sharings: &[f64]) -> Vec<RecoveryCostPoint> {
    let mut out = Vec::new();
    for &sharing in sharings {
        for p in [ProtocolKind::VolatileRedoAll, ProtocolKind::VolatileSelectiveRedo] {
            let mut db = bench_db(p);
            run_mix(&mut db, MixParams { txns, sharing, read_fraction: 0.2, ..Default::default() });
            // Leave some in-flight work so recovery has real undo/redo to
            // do.
            let _ = spawn_active(&mut db, 2, 2, true, 5);
            // Crash node 0: it touched the shared region first, so its
            // uncommitted updates have migrated to later touchers and the
            // undo machinery has real work.
            let outcome = db.crash_and_recover(&[NodeId(0)]).expect("recovery");
            db.check_ifa(NodeId(1)).assert_ok();
            out.push(RecoveryCostPoint {
                protocol: format!("{p:?}"),
                sharing,
                redo_applied: outcome.redo_applied,
                redo_skipped_cached: outcome.redo_skipped_cached,
                undo_applied: outcome.undo_records_applied,
                scan_records: outcome.scan_records,
                recovery_cycles: outcome.recovery_cycles,
                lost_lines: outcome.lost_lines,
                phase_stable_undo: phase_cycles(&outcome, "stable_undo"),
                phase_reinstall: phase_cycles(&outcome, "reinstall"),
                phase_cache_discard: phase_cycles(&outcome, "cache_discard"),
                phase_redo: phase_cycles(&outcome, "redo"),
                phase_undo: phase_cycles(&outcome, "undo"),
                phase_lock_recovery: phase_cycles(&outcome, "lock_recovery"),
                phase_txn_table: phase_cycles(&outcome, "txn_table"),
            });
        }
    }
    out
}

// ----------------------------------------------------------------------
// E4 — §5.2/§7: log-force frequency by policy and sharing rate
// ----------------------------------------------------------------------

/// Log-force measurements for one (protocol, sharing) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogForcePoint {
    /// Protocol measured.
    pub protocol: String,
    /// Workload sharing rate.
    pub sharing: f64,
    /// Total physical log forces.
    pub total_forces: u64,
    /// Log-force requests (physical forces plus requests absorbed by the
    /// coalescing window; equal to `total_forces` when coalescing is off).
    pub forces_requested: u64,
    /// Forces at commit (incurred by any FA scheme).
    pub commit_forces: u64,
    /// LBM-attributable forces (eager per-update, or coherence-triggered).
    pub lbm_forces: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Simulated cycles per committed transaction.
    pub cycles_per_txn: u64,
}

/// Sweep the sharing rate under every protocol and measure force counts
/// and simulated cost. Expected shape: Volatile stays at ~1 force/txn
/// (commit only); Stable-eager pays one per update regardless of sharing;
/// Stable-triggered grows with the sharing rate.
pub fn e4_log_forces(txns: usize, sharings: &[f64], nvram: bool) -> Vec<LogForcePoint> {
    let mut out = Vec::new();
    for &sharing in sharings {
        for p in ProtocolKind::ifa_protocols() {
            let mut cfg = DbConfig::bench(8, p).without_index();
            if nvram {
                cfg = cfg.with_cost(CostModel::default().with_nvram_log());
            }
            let mut db = SmDb::new(cfg);
            let report = run_mix(
                &mut db,
                MixParams { txns, sharing, read_fraction: 0.3, ..Default::default() },
            );
            let stats = db.stats();
            out.push(LogForcePoint {
                protocol: format!("{p:?}"),
                sharing,
                total_forces: db.total_log_forces(),
                forces_requested: db.logs().total_forces_requested(),
                commit_forces: stats.commit_forces,
                lbm_forces: stats.lbm_forces,
                committed: report.committed,
                cycles_per_txn: report.sim_cycles / report.committed.max(1),
            });
        }
    }
    out
}

// ----------------------------------------------------------------------
// E5 — §7: write-invalidate vs write-broadcast recovery demands
// ----------------------------------------------------------------------

/// Coherence-protocol comparison for one cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoherencePoint {
    /// Hardware coherence protocol.
    pub coherence: String,
    /// Lines destroyed by the crash.
    pub lost_lines: u64,
    /// Heap redo operations needed at recovery.
    pub redo_applied: u64,
    /// Undo operations needed at recovery.
    pub undo_applied: u64,
    /// Coherence messages during the workload (invalidations +
    /// broadcast updates).
    pub coherence_traffic: u64,
}

/// Same workload and crash under write-invalidate vs write-broadcast:
/// broadcast leaves replicas everywhere, so recovery needs (almost) no
/// redo — only undo (§7's argument for pairing it with Selective Redo).
pub fn e5_coherence_comparison(txns: usize) -> Vec<CoherencePoint> {
    let mut out = Vec::new();
    for kind in [CoherenceKind::WriteInvalidate, CoherenceKind::WriteBroadcast] {
        let cfg = DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo).with_coherence(kind);
        let mut db = SmDb::new(cfg);
        run_mix(
            &mut db,
            MixParams { txns, sharing: 0.6, read_fraction: 0.2, ..Default::default() },
        );
        let _ = spawn_active(&mut db, 2, 2, true, 5);
        let traffic = db.machine().stats().invalidations + db.machine().stats().broadcast_updates;
        let outcome = db.crash_and_recover(&[NodeId(0)]).expect("recovery");
        db.check_ifa(NodeId(1)).assert_ok();
        out.push(CoherencePoint {
            coherence: format!("{kind:?}"),
            lost_lines: outcome.lost_lines,
            redo_applied: outcome.redo_applied,
            undo_applied: outcome.undo_records_applied,
            coherence_traffic: traffic,
        });
    }
    out
}

// ----------------------------------------------------------------------
// E6 — §6: update-protocol cost, line locks vs semaphores
// ----------------------------------------------------------------------

/// Update-protocol cost for one synchronisation primitive.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UpdateProtocolPoint {
    /// Primitive modelled.
    pub primitive: String,
    /// Mean simulated cycles per committed transaction.
    pub cycles_per_txn: u64,
    /// Mean µs-equivalents per update operation (includes coherence
    /// traffic and logging, not just the critical section).
    pub us_per_update: f64,
    /// Pure critical-section cost per §6 update (two lock/unlock pairs —
    /// Page-LSN line and record line), µs-equivalents: the paper's
    /// "number of instructions executed" comparison.
    pub critical_section_us: f64,
}

/// Compare the §6 update protocol using hardware line locks against the
/// same protocol using OS-semaphore-class critical sections (modelled by
/// inflating the lock-primitive costs to typical semaphore path lengths:
/// the paper's point is that line locks cut the instruction count
/// substantially).
pub fn e6_update_protocol(txns: usize) -> Vec<UpdateProtocolPoint> {
    let mut out = Vec::new();
    // A semaphore P/V pair costs thousands of instructions (syscall or
    // heavyweight latch) vs the single-instruction getline/releaseline.
    let semaphore_cost =
        CostModel { line_lock_acquire: 3_000, line_lock_release: 1_500, ..CostModel::default() };
    for (name, cost) in [("line locks", CostModel::default()), ("semaphores", semaphore_cost)] {
        let cfg = DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo)
            .without_index()
            .with_cost(cost.clone());
        let mut db = SmDb::new(cfg);
        // Warm phase: fault every touched page in, so the measured phase
        // isolates the update-protocol cost from one-time disk I/O.
        run_mix(
            &mut db,
            MixParams { txns, sharing: 0.3, read_fraction: 0.0, seed: 1, ..Default::default() },
        );
        let updates_before = db.stats().updates;
        let report = run_mix(
            &mut db,
            MixParams { txns, sharing: 0.3, read_fraction: 0.0, seed: 2, ..Default::default() },
        );
        let updates = (db.stats().updates - updates_before).max(1);
        let cs_cycles = 2 * (cost.line_lock_acquire + cost.line_lock_release);
        out.push(UpdateProtocolPoint {
            primitive: name.to_string(),
            cycles_per_txn: report.sim_cycles / report.committed.max(1),
            us_per_update: cost.cycles_to_us(report.sim_cycles / updates),
            critical_section_us: cost.cycles_to_us(cs_cycles),
        });
    }
    out
}

// ----------------------------------------------------------------------
// E7 — §4.2.2: lock-space recovery
// ----------------------------------------------------------------------

/// Lock-space recovery measurements for one LCB layout.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LockRecoveryPoint {
    /// LCB layout used.
    pub layout: String,
    /// Lock-table lines destroyed by the crash.
    pub lines_reinstalled: u64,
    /// Crashed transactions' entries released from surviving LCBs.
    pub crashed_entries_released: u64,
    /// LCBs reconstructed from surviving logs.
    pub lcbs_reconstructed: u64,
    /// Surviving transactions' entries restored.
    pub survivor_entries_restored: u64,
    /// Waiters promoted when crashed holders departed.
    pub promotions: u64,
}

/// Lock-heavy steady state, then a crash: measure the §4.2.2 recovery
/// actions under both LCB layouts (co-located vs one-per-line).
pub fn e7_lock_recovery(per_node: usize) -> Vec<LockRecoveryPoint> {
    let mut out = Vec::new();
    for (name, geom) in [
        ("2 LCBs/line (co-located)", LcbGeometry::co_located()),
        ("1 LCB/line", LcbGeometry::one_per_line()),
    ] {
        let mut cfg = DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo).without_index();
        cfg.lcb_geometry = geom;
        let mut db = SmDb::new(cfg);
        let actives = spawn_active(&mut db, per_node, 3, true, 23);
        // Survivors now *touch the LCBs* of locks held by node 7's
        // transactions (queued conflicting requests): those LCB lines end
        // up on the survivors, so the crash leaves the crashed holders'
        // entries in surviving LCBs — the undo half of §4.2.2.
        let doomed: Vec<_> = actives.iter().filter(|t| t.node() == NodeId(7)).copied().collect();
        for (i, d) in doomed.iter().enumerate() {
            if let Some(&name) = db.held_lock_names(*d).first() {
                let prober = db.begin(NodeId(i as u16 % 4)).expect("alive");
                let _ = db.probe_lock_conflict(prober, name);
            }
        }
        let outcome = db.crash_and_recover(&[NodeId(7)]).expect("recovery");
        db.check_ifa(NodeId(0)).assert_ok();
        let lr = outcome.lock_recovery;
        out.push(LockRecoveryPoint {
            layout: name.to_string(),
            lines_reinstalled: lr.lines_reinstalled,
            crashed_entries_released: lr.crashed_entries_released,
            lcbs_reconstructed: lr.lcbs_reconstructed,
            survivor_entries_restored: lr.survivor_entries_restored,
            promotions: lr.promotions,
        });
    }
    out
}

// ----------------------------------------------------------------------
// E7b — checkpoint-bounded restart: recovery cost vs history length
// ----------------------------------------------------------------------

/// Recovery-scaling measurements for one (protocol, history, checkpoint
/// interval) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecoveryScalingPoint {
    /// Protocol measured.
    pub protocol: String,
    /// Transactions executed before the crash (history length).
    pub history_txns: usize,
    /// Sharp-checkpoint interval in transactions (0 = checkpoints off,
    /// i.e. the unbounded pre-checkpoint restart).
    pub checkpoint_every: usize,
    /// Simulated recovery time, cycles.
    pub recovery_cycles: u64,
    /// Log records visited by the single analysis scan.
    pub scan_records: u64,
    /// Heap redo operations applied.
    pub redo_applied: u64,
    /// Redo candidates not applied (cached-probe + stable-equal +
    /// plan-superseded).
    pub redo_skipped: u64,
    /// Highest per-node checkpoint LSN bounding the redo scan.
    pub ckpt_bound_lsn: u64,
    /// Recovery wall-clock, nanoseconds (host-dependent; the CSV carries
    /// it for the report, the gates use the deterministic cycle counts).
    pub wall_ns: u64,
}

/// Grow the pre-crash history with and without periodic sharp
/// checkpoints, crash one node, and measure how restart cost scales. The
/// point of checkpoint-bounded recovery: without checkpoints the analysis
/// scan (and therefore restart time) grows linearly with the history;
/// with them, truncation caps the retained log so recovery cost plateaus
/// near one checkpoint interval regardless of history length.
pub fn e7_recovery_scaling(
    history_lens: &[usize],
    checkpoint_every: usize,
) -> Vec<RecoveryScalingPoint> {
    assert!(checkpoint_every > 0, "pass the interval; 0 is generated as the baseline");
    let mut out = Vec::new();
    for &txns in history_lens {
        for p in ProtocolKind::ifa_protocols() {
            for ckpt in [0, checkpoint_every] {
                let mut db = bench_db(p);
                run_mix(
                    &mut db,
                    MixParams {
                        txns,
                        sharing: 0.5,
                        read_fraction: 0.2,
                        checkpoint_every: ckpt,
                        ..Default::default()
                    },
                );
                let _ = spawn_active(&mut db, 2, 2, true, 5);
                let t0 = std::time::Instant::now();
                let outcome = db.crash_and_recover(&[NodeId(0)]).expect("recovery");
                let wall_ns = t0.elapsed().as_nanos() as u64;
                db.check_ifa(NodeId(1)).assert_ok();
                out.push(RecoveryScalingPoint {
                    protocol: format!("{p:?}"),
                    history_txns: txns,
                    checkpoint_every: ckpt,
                    recovery_cycles: outcome.recovery_cycles,
                    scan_records: outcome.scan_records,
                    redo_applied: outcome.redo_applied,
                    redo_skipped: outcome.redo_skipped_cached
                        + outcome.redo_skipped_stable
                        + outcome.redo_superseded,
                    ckpt_bound_lsn: outcome.ckpt_bound_lsn,
                    wall_ns,
                });
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// E8 — §4.2.1: B-tree recovery
// ----------------------------------------------------------------------

/// B-tree recovery measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BtreeRecoveryPoint {
    /// Index operations committed before the crash.
    pub committed_ops: u64,
    /// Splits + root growths (early-committed structural changes).
    pub structural_changes: u64,
    /// Tree pages reinstalled from stable images.
    pub pages_reinstalled: u64,
    /// Index redo operations applied.
    pub index_redo_applied: u64,
    /// Uncommitted inserts removed + deletes unmarked.
    pub index_undo_applied: u64,
}

/// Index-heavy workload (with enough bulk inserts to force splits), then
/// a crash of the busiest node. The setup stages the paper's three
/// recovery cases: (a) uncommitted entries of the crashed node that
/// migrated to a survivor (explicit undo-by-tag), (b) a committed entry
/// whose only cached copy died with the crashed node (redo from its
/// stable log), and (c) early-committed splits whose durability recovery
/// relies on.
pub fn e8_btree_recovery(txns: usize) -> BtreeRecoveryPoint {
    let mut db = bench_db(ProtocolKind::VolatileSelectiveRedo);
    run_mix(
        &mut db,
        MixParams {
            txns,
            index_fraction: 0.8,
            read_fraction: 0.0,
            sharing: 0.4,
            ..Default::default()
        },
    );
    // Bulk inserts by node 6 to force leaf splits (keys well above the
    // mix's key range).
    for i in 0..300u64 {
        let t = db.begin(NodeId(6)).expect("alive");
        db.insert(t, 2_000_000 + i, i.to_le_bytes()).expect("bulk insert");
        db.commit(t).expect("bulk commit");
    }
    let t = db.tree_stats();
    let committed_ops = t.inserts + t.deletes;
    let structural = t.splits + t.root_grows;
    let _ = spawn_active(&mut db, 1, 1, false, 3);
    // (a) In-flight index work on the doomed node, in the mid-range leaf...
    let doomed = db.begin(NodeId(7)).expect("node alive");
    db.insert(doomed, 1_500_001, [1u8; 8]).expect("insert");
    db.insert(doomed, 1_500_002, [2u8; 8]).expect("insert");
    // ...replicated onto a survivor by an H_wr read, so the uncommitted
    // entries outlive the crash and require explicit undo-by-tag.
    let reader = db.begin(NodeId(0)).expect("node alive");
    let _ = db.lookup(reader, 1_500_000);
    db.commit(reader).expect("read-only commit");
    // (b) A committed node-7 insert in the rightmost leaf, whose lines
    // stay exclusive on node 7: destroyed by the crash, redone from node
    // 7's stable log.
    let lost_commit = db.begin(NodeId(7)).expect("node alive");
    db.insert(lost_commit, 2_000_500, [9u8; 8]).expect("insert");
    db.commit(lost_commit).expect("commit");
    let outcome = db.crash_and_recover(&[NodeId(7)]).expect("recovery");
    db.check_ifa(NodeId(0)).assert_ok();
    let mut db2_check = db.index_scan(NodeId(0)).expect("scan");
    db2_check.retain(|(k, _)| *k == 2_000_500);
    assert_eq!(db2_check.len(), 1, "lost committed insert must be redone");
    BtreeRecoveryPoint {
        committed_ops,
        structural_changes: structural,
        pages_reinstalled: outcome.btree_recovery.pages_reinstalled,
        index_redo_applied: outcome.index_redo_applied,
        index_undo_applied: outcome.btree_recovery.undo_inserts
            + outcome.btree_recovery.undo_deletes,
    }
}

// ----------------------------------------------------------------------
// E9 — §3.1 ablation: record co-location (records per cache line)
// ----------------------------------------------------------------------

/// Co-location ablation measurements for one record size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColocationPoint {
    /// Records per cache line.
    pub records_per_line: usize,
    /// Record payload size, bytes.
    pub rec_data_size: usize,
    /// ww migrations + invalidations during the workload.
    pub coherence_traffic: u64,
    /// Lines destroyed by the crash.
    pub lost_lines: u64,
    /// Heap redo + undo work at recovery.
    pub recovery_work: u64,
    /// Space overhead vs the densest layout (bytes per record slot).
    pub bytes_per_record_slot: usize,
}

/// Sweep the number of records per cache line (§3: *"unless a lot of
/// space is wasted, it is likely that multiple records will be stored in
/// a cache line"*). One record per line reduces ww co-location traffic at
/// a space cost, but — as the paper stresses — does **not** remove the
/// recovery problems, which also arise from wr sharing and support
/// structures.
pub fn e9_colocation(txns: usize) -> Vec<ColocationPoint> {
    let mut out = Vec::new();
    for rec_size in [40usize, 60, 126] {
        let cfg = DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo)
            .without_index()
            .with_rec_data_size(rec_size);
        let line = cfg.line_size;
        let mut db = SmDb::new(cfg);
        let rpl = db.record_layout().records_per_line();
        run_mix(
            &mut db,
            MixParams { txns, sharing: 0.5, read_fraction: 0.2, ..Default::default() },
        );
        let _ = spawn_active(&mut db, 2, 2, true, 5);
        let traffic = db.machine().stats().migrations + db.machine().stats().invalidations;
        let outcome = db.crash_and_recover(&[NodeId(0)]).expect("recovery");
        db.check_ifa(NodeId(1)).assert_ok();
        out.push(ColocationPoint {
            records_per_line: rpl,
            rec_data_size: rec_size,
            coherence_traffic: traffic,
            lost_lines: outcome.lost_lines,
            recovery_work: outcome.redo_applied + outcome.undo_records_applied,
            bytes_per_record_slot: line / rpl,
        });
    }
    out
}

// ----------------------------------------------------------------------
// E10 — §9 extension: parallel transactions widen the crash blast radius
// ----------------------------------------------------------------------

/// Blast-radius measurement for one fan-out.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParallelBlastPoint {
    /// Participant nodes per transaction.
    pub fan: u16,
    /// Active transactions at crash time.
    pub active: u64,
    /// Transactions aborted by a single node crash.
    pub aborted: u64,
    /// Fraction of actives killed.
    pub kill_fraction: f64,
}

/// §9: "if one of the nodes executing this transaction were to crash, the
/// entire transaction must be aborted." With fan-out `f` on `n` nodes, a
/// single crash dooms ≈ f/n of all active parallel transactions — IFA's
/// per-node isolation dilutes as transactions spread.
pub fn e10_parallel_blast_radius(per_node: usize) -> Vec<ParallelBlastPoint> {
    let mut out = Vec::new();
    for fan in [1u16, 2, 4, 8] {
        let mut cfg = DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo);
        cfg.with_index = false;
        let mut db = SmDb::new(cfg);
        let txns = spawn_active_parallel(&mut db, per_node, fan, 31);
        let active = txns.len() as u64;
        let outcome = db.crash_and_recover(&[NodeId(3)]).expect("recovery");
        db.check_ifa(NodeId(0)).assert_ok();
        let aborted = outcome.aborted.len() as u64;
        out.push(ParallelBlastPoint {
            fan,
            active,
            aborted,
            kill_fraction: aborted as f64 / active as f64,
        });
    }
    out
}

// ----------------------------------------------------------------------
// E8-fwd — forward-path fast lane: TP1 throughput with coalesced forces
// ----------------------------------------------------------------------

/// Forward-path throughput for one (protocol, coalescing) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ForwardPoint {
    /// Protocol measured.
    pub protocol: String,
    /// Whether coalesced (group) log forces were enabled.
    pub coalesce: bool,
    /// Committed transactions.
    pub committed: u64,
    /// Simulated cycles per committed transaction.
    pub cycles_per_txn: u64,
    /// Committed transactions per million simulated cycles.
    pub tps_per_mcycle: f64,
    /// Log-force requests (physical + coalesced).
    pub forces_requested: u64,
    /// Physical log forces (each paid the full force latency).
    pub physical_forces: u64,
    /// Log records made durable by the physical forces.
    pub records_forced: u64,
    /// Lock-manager re-acquire fast-lane hits.
    pub lock_fast_hits: u64,
}

/// TP1 under every IFA protocol, with force coalescing off and on. The
/// durability guarantees are identical either way (a force request's
/// window is only uncovered while the updated lines are still exclusive
/// to the updater — exactly the window Stable-Triggered already leaves
/// open), so the comparison isolates the forward-path cost of eager
/// physical forcing.
pub fn e8_forward_throughput(txns: usize) -> Vec<ForwardPoint> {
    let mut out = Vec::new();
    for p in ProtocolKind::ifa_protocols() {
        for coalesce in [false, true] {
            let mut cfg = DbConfig::bench(8, p);
            if coalesce {
                cfg = cfg.with_coalesced_forces();
            }
            let mut db = SmDb::new(cfg);
            let report = run_tp1(&mut db, Tp1Params { txns, ..Default::default() });
            db.check_ifa(NodeId(0)).assert_ok();
            out.push(ForwardPoint {
                protocol: format!("{p:?}"),
                coalesce,
                committed: report.committed,
                cycles_per_txn: report.sim_cycles / report.committed.max(1),
                tps_per_mcycle: report.tps_per_mcycle,
                forces_requested: report.forces_requested,
                physical_forces: report.physical_forces,
                records_forced: report.records_forced,
                lock_fast_hits: db.lock_stats().fast_hits,
            });
        }
    }
    out
}

// ----------------------------------------------------------------------
// E9-lat — transaction-latency breakdown by protocol (span attribution)
// ----------------------------------------------------------------------

/// Latency distribution and per-stage cycle attribution for one protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Protocol measured.
    pub protocol: String,
    /// Committed transactions (span count behind the percentiles).
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Mean end-to-end latency, simulated cycles.
    pub mean_cycles: f64,
    /// Median latency (log₂-bucket resolution).
    pub p50_cycles: u64,
    /// 99th-percentile latency.
    pub p99_cycles: u64,
    /// 99.9th-percentile latency.
    pub p999_cycles: u64,
    /// Largest observed latency.
    pub max_cycles: u64,
    /// Sum of end-to-end latencies over all finished spans.
    pub total_latency_cycles: u64,
    /// Cycles attributed to waiting on line locks.
    pub lock_wait_cycles: u64,
    /// Cycles attributed to operation execution (index probes, buffer
    /// traffic, coherence misses).
    pub execute_cycles: u64,
    /// Cycles attributed to WAL appends.
    pub log_append_cycles: u64,
    /// Cycles attributed to waiting on physical log forces.
    pub force_wait_cycles: u64,
    /// Cycles attributed to the commit/abort protocol itself.
    pub commit_cycles: u64,
    /// Fraction of total latency the five stages account for (the
    /// attribution invariant; ≈1.0 by construction).
    pub attributed_fraction: f64,
}

/// TP1 under every IFA protocol with transaction spans enabled: where do
/// a transaction's cycles go, and what does the tail look like? The
/// Stable-LBM protocols pay the log-force latency on the forward path
/// (Table 1's "higher frequency of log forces"), which this experiment
/// resolves into the `force_wait` stage and a fatter p99.
pub fn e9_latency(txns: usize) -> Vec<LatencyPoint> {
    let mut out = Vec::new();
    for p in ProtocolKind::ifa_protocols() {
        let mut db = bench_db(p);
        db.enable_observability(0);
        let _ = run_tp1(&mut db, Tp1Params { txns, ..Default::default() });
        let agg = db.observability().spans.aggregate();
        let lat = agg.latency.snapshot();
        let stages = agg.stage_cycles;
        let attributed: u64 = stages.iter().sum();
        let total = agg.total_latency_cycles as u64;
        out.push(LatencyPoint {
            protocol: format!("{p:?}"),
            committed: agg.committed,
            aborted: agg.aborted,
            mean_cycles: lat.mean,
            p50_cycles: lat.p50,
            p99_cycles: lat.p99,
            p999_cycles: lat.p999,
            max_cycles: lat.max,
            total_latency_cycles: total,
            lock_wait_cycles: stages[Stage::LockWait.index()],
            execute_cycles: stages[Stage::Execute.index()],
            log_append_cycles: stages[Stage::LogAppend.index()],
            force_wait_cycles: stages[Stage::ForceWait.index()],
            commit_cycles: stages[Stage::Commit.index()],
            attributed_fraction: attributed as f64 / total.max(1) as f64,
        });
    }
    out
}

// ----------------------------------------------------------------------
// E10-elr — early lock release + pipelined group commit under contention
// ----------------------------------------------------------------------

/// One (protocol, early-lock-release) cell of the contended pipelined mix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ElrPoint {
    /// Protocol measured.
    pub protocol: String,
    /// Whether controlled lock violation (early lock release) was on.
    pub elr: bool,
    /// Committed transactions.
    pub committed: u64,
    /// Simulated cycles per committed transaction.
    pub cycles_per_txn: u64,
    /// Cycles attributed to waiting on record locks (span stage total —
    /// polling retries accumulate here).
    pub lock_wait_cycles: u64,
    /// Operations that found their lock held and retried in place.
    pub lock_stalls: u64,
    /// Write locks released at commit-record append time.
    pub early_released: u64,
    /// Commit-LSN dependencies inherited through violated locks.
    pub commit_deps: u64,
    /// Dependents aborted because a predecessor died before the covering
    /// force (0 in a crash-free run).
    pub dep_aborts: u64,
    /// Log-force requests (physical + coalesced).
    pub forces_requested: u64,
    /// Physical log forces performed.
    pub physical_forces: u64,
    /// Log records made durable, measured over the run *plus* a closing
    /// checkpoint that forces every log to its tip — i.e. the total
    /// durability volume of the cell, which must not depend on the
    /// lock-release policy.
    pub records_forced: u64,
}

/// The high-contention Zipf TP1 cell under every IFA protocol, with
/// controlled lock violation off and on. All cells run the pipelined
/// group-commit driver over a polling lock manager with coalesced
/// forces, so the *only* difference between the off and on cell of a
/// protocol is when write locks come off: at commit acknowledgement
/// (strict 2PL) versus at commit-record append (violation edges +
/// dependency-covered acknowledgement). Early release lets successors
/// run during the force window, so the hot-set serialisation stalls —
/// and with them whole-run cycles — collapse, while the logged record
/// stream (and hence `records_forced`) is byte-for-byte the same.
pub fn e10_elr(txns: usize) -> Vec<ElrPoint> {
    let mut out = Vec::new();
    for p in ProtocolKind::ifa_protocols() {
        for elr in [false, true] {
            let mut cfg = DbConfig::bench(8, p).with_coalesced_forces().with_lock_polling();
            if elr {
                cfg = cfg.with_early_lock_release();
            }
            let mut db = SmDb::new(cfg);
            db.enable_observability(0);
            let records0 = db.logs().total_records_forced();
            let report = run_mix(&mut db, MixParams::contended_tp1(txns));
            // Close the cell by forcing every log to its tip (one
            // checkpoint record per node, identical in both cells): total
            // records forced == total records appended, making the
            // durability volume comparable across lock policies.
            db.checkpoint(NodeId(0)).expect("closing checkpoint");
            let records_forced = db.logs().total_records_forced() - records0;
            db.check_ifa(NodeId(0)).assert_ok();
            let agg = db.observability().spans.aggregate();
            let stats = db.stats();
            out.push(ElrPoint {
                protocol: format!("{p:?}"),
                elr,
                committed: report.committed,
                cycles_per_txn: report.sim_cycles / report.committed.max(1),
                lock_wait_cycles: agg.stage_cycles[Stage::LockWait.index()],
                lock_stalls: report.lock_stalls,
                early_released: db.lock_stats().early_released,
                commit_deps: stats.commit_deps,
                dep_aborts: stats.dep_aborts,
                forces_requested: report.forces_requested,
                physical_forces: report.physical_forces,
                records_forced,
            });
        }
    }
    out
}

// ----------------------------------------------------------------------
// E11 — instant restart: serve transactions during recovery
// ----------------------------------------------------------------------

/// One cell of the instant-restart availability experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InstantRestartPoint {
    /// Protocol under test.
    pub protocol: String,
    /// Instant restart on (open after analysis, deferred heap redo) or
    /// off (stop-the-world eager restart).
    pub instant: bool,
    /// Time to first transaction: simulated cycles from crash injection
    /// to the first post-recovery commit (the availability headline).
    pub ttft_cycles: u64,
    /// Simulated cycles charged inside `recover()` itself.
    pub recovery_cycles: u64,
    /// Heap redo writes performed, wherever they ran: eagerly during
    /// restart, inline on first access, or by the background drain.
    pub redo_total: u64,
    /// Deferred entries applied inline on first forward-path access.
    pub redo_on_demand: u64,
    /// Deferred entries applied by the background drain.
    pub redo_background: u64,
    /// Deferred entries retired without a write (stable image current).
    pub redo_skipped_stable: u64,
    /// FNV-1a digest of every record's post-drain value: instant and
    /// eager cells of the same protocol must agree byte-for-byte.
    pub state_digest: u64,
    /// Every record also matched the shadow oracle's committed value.
    pub matches_committed: bool,
}

/// Identical pre-crash histories (E7b scale: checkpoint-bounded mix plus
/// survivor-active transactions), one crash, then the availability
/// measurement: how long until the engine commits its first post-crash
/// transaction? The eager cell pays the whole heap-redo pass before it
/// opens; the instant cell opens after analysis/reinstall and repays the
/// redo on demand plus in the background — same total work, earlier
/// first commit, byte-identical end state.
pub fn e11_instant_restart(txns: usize, checkpoint_every: usize) -> Vec<InstantRestartPoint> {
    let mut out = Vec::new();
    for p in ProtocolKind::ifa_protocols() {
        for instant in [false, true] {
            let mut cfg = DbConfig::bench(8, p);
            // E7b-scale heap: enough pages that the crashed node's
            // resident set at the crash spans hundreds of them. One
            // record per line (96-byte payloads) makes every lost line
            // an independent page fault for the eager reinstall.
            cfg.records = 65536;
            cfg.rec_data_size = 96;
            if instant {
                cfg = cfg.with_instant_restart();
            }
            let mut db = SmDb::new(cfg);
            db.enable_observability(0);
            // E7b-scale history: a wide uniform footprint (a moderate
            // shared region plus large per-node partitions) makes the
            // crashed node's cache span dozens of heap pages, so eager
            // recovery pays one disk fault per lost page while the
            // instant open stays bounded by the checkpoint interval.
            run_mix(
                &mut db,
                MixParams {
                    txns,
                    ops_per_txn: 8,
                    sharing: 0.3,
                    shared_slots: 256,
                    read_fraction: 0.2,
                    checkpoint_every,
                    ..Default::default()
                },
            );
            let active = spawn_active(&mut db, 2, 2, true, 5);
            // Barrier: start the availability window from a common clock
            // origin so TTFT is pure recovery + first-txn cost, not
            // whatever clock skew the mix left between nodes.
            db.sync_clocks();
            let outcome = db.crash_and_recover(&[NodeId(0)]).expect("recovery");
            // First post-recovery transaction: a locked read in the
            // crashed node's private partition (free of survivor locks,
            // and exactly where pending redo concentrates).
            let t = db.begin(NodeId(1)).expect("begin after open");
            db.read(t, 300).expect("read after open");
            db.commit(t).expect("commit after open");
            let ttft = db
                .observability()
                .timeline
                .time_to_first_txn()
                .expect("crash and post-recovery commit recorded");
            while db.redo_pending() > 0 {
                db.drain_redo(NodeId(1), 64).expect("drain");
            }
            // Roll back the transactions left in flight across the crash
            // (the crashed node's are already gone — ignore those) so the
            // end-state digest compares fully-committed states.
            for t in &active {
                let _ = db.abort(*t);
            }
            db.check_ifa(NodeId(1)).assert_ok();
            let c = db.instant_redo_counters();
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            let mut matches_committed = true;
            for slot in 0..db.record_count() as u64 {
                let v = db.current_value(slot).expect("record readable");
                matches_committed &= v == db.read_committed(slot).expect("shadow value");
                for b in &v {
                    digest = (digest ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
                }
            }
            out.push(InstantRestartPoint {
                protocol: format!("{p:?}"),
                instant,
                ttft_cycles: ttft,
                recovery_cycles: outcome.recovery_cycles,
                redo_total: outcome.redo_applied + c.on_demand + c.background,
                redo_on_demand: c.on_demand,
                redo_background: c.background,
                redo_skipped_stable: c.skipped_stable,
                state_digest: digest,
                matches_committed,
            });
        }
    }
    out
}

// ----------------------------------------------------------------------
// E12 — true multicore execution: epoch-scheduled lanes on OS threads
// ----------------------------------------------------------------------

/// One cell×thread-count point of the multicore scaling experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MulticorePoint {
    /// Workload cell (`private_tp1` or `contended_zipf`).
    pub cell: String,
    /// OS threads driving the epoch lanes.
    pub threads: usize,
    /// Transactions committed (identical across thread counts).
    pub committed: u64,
    /// Host wall-clock for the run, microseconds. The only
    /// non-deterministic column — everything else is byte-identical
    /// across thread counts by construction.
    pub wall_micros: u64,
    /// Simulated machine makespan, cycles (thread-count-invariant).
    pub sim_cycles: u64,
    /// Epochs the scheduler split the run into.
    pub epochs: u64,
    /// Largest single-epoch admission.
    pub max_epoch_txns: u64,
    /// Admissions rejected on a claimed data stripe.
    pub data_conflicts: u64,
    /// Admissions rejected on a cross-node lock-name collision.
    pub lock_conflicts: u64,
    /// Node-epochs stalled by either conflict.
    pub epoch_waits: u64,
    /// Lane footprint escapes re-run serially.
    pub serial_retries: u64,
    /// FNV-1a digest of every committed record value (must be identical
    /// across thread counts within a cell).
    pub state_digest: u64,
}

/// Sweep OS threads over the epoch scheduler on two workload shapes: a
/// TP1-style private-partition update mix (admission packs whole nodes
/// into disjoint lanes — the scaling headline) and a fully-shared Zipf
/// hot-spot mix (admission degenerates towards serial epochs — the
/// honest worst case). Every run asserts the IFA oracle and that the
/// committed state digest is thread-count-invariant.
pub fn e12_multicore(txns: usize) -> Vec<MulticorePoint> {
    let cells: [(&str, MixParams); 2] = [
        (
            "private_tp1",
            MixParams {
                txns,
                ops_per_txn: 4,
                read_fraction: 0.0,
                sharing: 0.0,
                shared_slots: 0,
                zipf_theta: 0.0,
                seed: 0xE12,
                ..Default::default()
            },
        ),
        (
            "contended_zipf",
            MixParams {
                txns,
                ops_per_txn: 4,
                read_fraction: 0.0,
                sharing: 1.0,
                shared_slots: 4,
                zipf_theta: 0.95,
                seed: 0xE12,
                ..Default::default()
            },
        ),
    ];
    let mut out = Vec::new();
    for (cell, params) in cells {
        let mut cell_digest = None;
        for threads in [1usize, 2, 4, 8] {
            let mut db = SmDb::new(
                DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo).with_sim_shards(64),
            );
            let t0 = std::time::Instant::now();
            let (report, o) = run_mix_mt(&mut db, params.clone(), threads).expect("multicore run");
            let wall_micros = t0.elapsed().as_micros() as u64;
            db.check_ifa(NodeId(0)).assert_ok();
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            for slot in 0..db.record_count() as u64 {
                for b in &db.read_committed(slot).expect("record readable") {
                    digest = (digest ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
                }
            }
            match cell_digest {
                None => cell_digest = Some(digest),
                Some(d) => {
                    assert_eq!(d, digest, "{cell}: thread count changed committed state")
                }
            }
            out.push(MulticorePoint {
                cell: cell.to_string(),
                threads,
                committed: report.committed,
                wall_micros,
                sim_cycles: report.sim_cycles,
                epochs: o.epochs,
                max_epoch_txns: o.max_epoch_txns,
                data_conflicts: o.data_conflicts,
                lock_conflicts: o.lock_conflicts,
                epoch_waits: o.epoch_waits,
                serial_retries: o.serial_retries,
                state_digest: digest,
            });
        }
    }
    out
}

// ----------------------------------------------------------------------
// Shared small helpers for the report binary and benches
// ----------------------------------------------------------------------

/// Run a mix and a single-node crash; return the recovery outcome (used
/// by the `recovery` criterion bench).
pub fn mix_then_crash(protocol: ProtocolKind, txns: usize, sharing: f64) -> RecoveryOutcome {
    let mut db = bench_db(protocol);
    run_mix(&mut db, MixParams { txns, sharing, ..Default::default() });
    let _ = spawn_active(&mut db, 2, 2, true, 5);
    db.crash_and_recover(&[NodeId(7)]).expect("recovery")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_matches_paper() {
        let pts = e1_line_lock_contention(32);
        assert!(pts[0].mean_us <= 10.0);
        let last = pts.last().unwrap();
        assert!(last.mean_us <= 40.0 && last.mean_us > 10.0);
    }

    #[test]
    fn e2_gap_grows_with_nodes() {
        let pts = e2_abort_counts(&[2, 4], 2);
        for p in &pts {
            assert_eq!(p.fa_only_aborts, p.active, "FA-only aborts everyone");
            assert_eq!(p.ifa_aborts, 2, "IFA aborts only the crashed node's txns");
        }
    }

    #[test]
    fn e4_volatile_never_lbm_forces() {
        let pts = e4_log_forces(20, &[0.5], false);
        let vol = pts.iter().find(|p| p.protocol.contains("VolatileSelective")).unwrap();
        assert_eq!(vol.lbm_forces, 0);
        let eager = pts.iter().find(|p| p.protocol.contains("Eager")).unwrap();
        assert!(eager.lbm_forces > vol.lbm_forces);
        // E4 runs without coalescing: every force request is physical, so
        // the requested/physical split must not drift apart here.
        for p in &pts {
            assert_eq!(p.forces_requested, p.total_forces, "{}", p.protocol);
        }
    }

    #[test]
    fn e8_forward_smoke() {
        let pts = e8_forward_throughput(12);
        assert_eq!(pts.len(), 8, "4 IFA protocols x coalescing off/on");
        for pt in &pts {
            assert!(pt.committed > 0, "{pt:?}");
            assert!(pt.physical_forces <= pt.forces_requested, "{pt:?}");
            if !pt.coalesce {
                assert_eq!(pt.physical_forces, pt.forces_requested, "{pt:?}");
            }
        }
    }

    #[test]
    fn e10_elr_smoke() {
        let pts = e10_elr(16);
        assert_eq!(pts.len(), 8, "4 IFA protocols x ELR off/on");
        for pair in pts.chunks(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert!(!off.elr && on.elr, "cells ordered off, on: {pair:?}");
            assert_eq!(off.protocol, on.protocol);
            assert!(off.committed > 0 && on.committed > 0, "{pair:?}");
            assert_eq!(off.early_released, 0, "{off:?}");
            assert!(on.early_released > 0, "{on:?}");
            assert_eq!(
                off.records_forced, on.records_forced,
                "durability volume must not depend on the lock policy: {pair:?}"
            );
        }
    }

    #[test]
    fn e9lat_smoke() {
        let pts = e9_latency(12);
        assert_eq!(pts.len(), 4, "one point per IFA protocol");
        for pt in &pts {
            assert!(pt.committed > 0, "{pt:?}");
            assert!(pt.p50_cycles <= pt.p99_cycles && pt.p99_cycles <= pt.p999_cycles, "{pt:?}");
            assert!((pt.attributed_fraction - 1.0).abs() < 0.05, "{pt:?}");
        }
    }

    #[test]
    fn e5_broadcast_needs_less_redo() {
        let pts = e5_coherence_comparison(30);
        let inval = &pts[0];
        let bcast = &pts[1];
        assert!(bcast.lost_lines <= inval.lost_lines);
        assert!(bcast.redo_applied <= inval.redo_applied);
    }

    #[test]
    fn e6_line_locks_beat_semaphores() {
        let pts = e6_update_protocol(30);
        assert!(pts[0].cycles_per_txn < pts[1].cycles_per_txn);
    }

    #[test]
    fn e7_recovery_reports_actions() {
        let pts = e7_lock_recovery(2);
        for p in &pts {
            assert!(p.crashed_entries_released + p.lcbs_reconstructed > 0, "{p:?}");
        }
    }

    #[test]
    fn e8_btree_recovery_runs() {
        let pt = e8_btree_recovery(40);
        assert!(pt.committed_ops > 0);
        assert!(pt.index_undo_applied >= 2, "the doomed inserts must be undone");
    }

    #[test]
    fn e10_blast_radius_grows_with_fan() {
        let pts = e10_parallel_blast_radius(2);
        assert!((pts[0].kill_fraction - 0.125).abs() < 1e-9, "fan 1: 1/8 of actives");
        for w in pts.windows(2) {
            assert!(w[1].kill_fraction >= w[0].kill_fraction, "{pts:?}");
        }
        assert!(pts.last().unwrap().kill_fraction > 0.9, "fan 8 on 8 nodes: ~everything");
    }

    #[test]
    fn e9_one_record_per_line_still_needs_recovery() {
        let pts = e9_colocation(30);
        let densest = &pts[0];
        let sparsest = pts.last().unwrap();
        assert!(densest.records_per_line > sparsest.records_per_line);
        // Space cost of avoiding co-location is real...
        assert!(sparsest.bytes_per_record_slot > densest.bytes_per_record_slot);
        // ...and the recovery problems do not vanish (wr sharing remains).
        assert!(sparsest.lost_lines > 0);
    }

    #[test]
    fn table1_matrix_matches_paper_checkmarks() {
        let rows = table1_overheads(250);
        let find = |s: &str| rows.iter().find(|r| r.protocol.contains(s)).unwrap().clone();
        let sel = find("VolatileSelective");
        let all = find("VolatileRedoAll");
        let eager = find("StableEager");
        let trig = find("StableTriggered");
        // Undo tagging: only Selective-Volatile.
        assert!(sel.undo_tag_writes > 0);
        assert_eq!(all.undo_tag_writes, 0);
        assert_eq!(eager.undo_tag_writes, 0);
        assert_eq!(trig.undo_tag_writes, 0);
        // Read-lock logging: everywhere.
        assert!(sel.read_lock_records > 0);
        // Higher force frequency: only the Stable LBM column.
        assert_eq!(sel.lbm_forces, 0);
        assert_eq!(all.lbm_forces, 0);
        assert!(eager.lbm_forces > 0);
        // Structural early commits appear whenever splits/overflows occur.
        assert!(sel.structural_early_commits > 0);
    }
}
