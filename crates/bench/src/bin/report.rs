//! Regenerate every paper-mapped table and figure (DESIGN.md §3).
//!
//! ```text
//! cargo run -p smdb-bench --bin report --release              # everything
//! cargo run -p smdb-bench --bin report --release -- --table1  # one artifact
//! cargo run -p smdb-bench --bin report --release -- --jobs 4  # parallel
//! ```
//!
//! Flags: `--table1 --e1 --e2 --e3 --e4 --e5 --e6 --e7 --e7scale --e8
//! --e8fwd --e9 --e9lat --e10 --e10elr --e11instant --e12mt --fast --csv
//! --jobs N --json [PATH]`
//!
//! Every experiment is a deterministic, independent *cell*; `--jobs N`
//! fans the cells across N OS threads and merges stdout sections and CSV
//! artifacts in the fixed submission order, so the report and `results/`
//! CSVs are byte-identical to a sequential run. `--json` additionally
//! writes a machine-readable `BENCH_report.json` trajectory record
//! (per-cell wall-clock, engine cycles/op where the experiment measures
//! one, peak RSS).

use smdb_bench as x;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// One CSV artifact produced by a cell, written under `results/` by the
/// merge step (in cell order, so `--csv` output is identical under any
/// `--jobs`).
struct CsvArtifact {
    name: &'static str,
    header: &'static str,
    rows: Vec<String>,
}

/// The rendered output of one experiment cell.
struct Section {
    text: String,
    csvs: Vec<CsvArtifact>,
    /// A representative engine cycles-per-operation figure, when the
    /// experiment measures one (recorded in BENCH_report.json).
    cycles_per_op: Option<u64>,
}

impl Section {
    fn text_only(text: String) -> Section {
        Section { text, csvs: Vec::new(), cycles_per_op: None }
    }
}

/// An experiment cell: a name plus a deterministic closure producing its
/// section. Cells never touch stdout/stderr or the filesystem — the
/// harness owns all output ordering.
struct Cell {
    name: &'static str,
    run: Box<dyn FnOnce() -> Section + Send>,
}

/// A finished cell with its timing, ready for the merge step.
struct CellResult {
    name: &'static str,
    section: Section,
    wall_ms: f64,
}

fn want(args: &[String], flag: &str) -> bool {
    let explicit: Vec<&String> = args
        .iter()
        .filter(|a| {
            a.starts_with("--")
                && *a != "--fast"
                && *a != "--csv"
                && !a.starts_with("--jobs")
                && !a.starts_with("--json")
        })
        .collect();
    explicit.is_empty() || args.iter().any(|a| a == flag)
}

/// Parse `--flag N` / `--flag=N`; `missing` when absent, `bare` when the
/// flag appears without a value.
fn flag_value(
    args: &[String],
    flag: &str,
    missing: Option<String>,
    bare: String,
) -> Option<String> {
    let eq = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if a == flag {
            return match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => Some(v.clone()),
                _ => Some(bare),
            };
        }
    }
    missing
}

/// Write one CSV artifact under `results/`.
fn write_csv(a: &CsvArtifact) {
    std::fs::create_dir_all("results").expect("create results/");
    let path = format!("results/{}.csv", a.name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", a.header).expect("write header");
    for row in &a.rows {
        writeln!(f, "{row}").expect("write row");
    }
    eprintln!("wrote {path}");
}

/// Write the machine-readable bench-trajectory record.
fn write_json_report(
    path: &str,
    jobs: usize,
    fast: bool,
    total_wall_ms: f64,
    cells: &[CellResult],
) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"smdb-bench-report/v1\",\n");
    let _ = writeln!(s, "  \"jobs\": {jobs},");
    let _ = writeln!(s, "  \"fast\": {fast},");
    let _ = writeln!(s, "  \"total_wall_ms\": {total_wall_ms:.3},");
    match x::peak_rss_kb() {
        Some(kb) => {
            let _ = writeln!(s, "  \"peak_rss_kb\": {kb},");
        }
        None => {
            let _ = writeln!(s, "  \"peak_rss_kb\": null,");
        }
    }
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let cyc = match c.section.cycles_per_op {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"cycles_per_op\": {}}}{}",
            x::json_escape(c.name),
            c.wall_ms,
            cyc,
            comma
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write json report");
    eprintln!("wrote {path}");
}

fn table1_cell(t1_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== Table 1: incremental overheads of protocols ensuring IFA ==");
    let _ = writeln!(
        p,
        "   workload: TP1 debit-credit, 8 nodes, {t1_txns} transactions, history index\n"
    );
    let rows = x::table1_overheads(t1_txns);
    let _ = writeln!(
        p,
        "{:<24} {:>10} {:>10} {:>9} {:>10} {:>9}",
        "protocol", "structural", "read-lock", "undo-tag", "LBM", "committed"
    );
    let _ = writeln!(
        p,
        "{:<24} {:>10} {:>10} {:>9} {:>10} {:>9}",
        "", "early-cmts", "log recs", "writes", "forces", "txns"
    );
    for r in &rows {
        let _ = writeln!(
            p,
            "{:<24} {:>10} {:>10} {:>9} {:>10} {:>9}",
            r.protocol,
            r.structural_early_commits,
            r.read_lock_records,
            r.undo_tag_writes,
            r.lbm_forces,
            r.committed
        );
    }
    let csvs = vec![CsvArtifact {
        name: "table1",
        header: "protocol,structural_early_commits,read_lock_records,undo_tag_writes,lbm_forces,commit_forces,committed",
        rows: rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{},{}",
                    r.protocol,
                    r.structural_early_commits,
                    r.read_lock_records,
                    r.undo_tag_writes,
                    r.lbm_forces,
                    r.commit_forces,
                    r.committed
                )
            })
            .collect(),
    }];
    let _ = writeln!(
        p,
        "\n   paper's checkmark matrix (✓ = overhead incurred), derived from the counts:"
    );
    let _ = writeln!(
        p,
        "{:<32} {:>12} {:>18} {:>12}",
        "overhead", "Stable LBM", "Vol.+SelectiveRedo", "Vol.+RedoAll"
    );
    let find = |s: &str| rows.iter().find(|r| r.protocol.contains(s)).expect("row");
    let sel = find("VolatileSelective");
    let all = find("VolatileRedoAll");
    let stable = find("StableTriggered");
    let mark = |v: u64| if v > 0 { "✓" } else { "—" };
    let _ = writeln!(
        p,
        "{:<32} {:>12} {:>18} {:>12}",
        "early commit of structural chgs",
        mark(stable.structural_early_commits),
        mark(sel.structural_early_commits),
        mark(all.structural_early_commits)
    );
    let _ = writeln!(
        p,
        "{:<32} {:>12} {:>18} {:>12}",
        "logging of read locks",
        mark(stable.read_lock_records),
        mark(sel.read_lock_records),
        mark(all.read_lock_records)
    );
    let _ = writeln!(
        p,
        "{:<32} {:>12} {:>18} {:>12}",
        "undo tagging",
        mark(stable.undo_tag_writes),
        mark(sel.undo_tag_writes),
        mark(all.undo_tag_writes)
    );
    let _ = writeln!(
        p,
        "{:<32} {:>12} {:>18} {:>12}",
        "higher frequency of log forces",
        mark(stable.lbm_forces),
        mark(sel.lbm_forces),
        mark(all.lbm_forces)
    );
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op: None }
}

fn e1_cell() -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E1 (§5.1): line-lock acquisition latency vs contention ==");
    let _ = writeln!(p, "   paper (KSR-1 measurements): <10 µs uncontended, <40 µs at 32-way\n");
    let _ = writeln!(p, "{:>10} {:>12} {:>12}", "contenders", "mean (µs)", "max (µs)");
    let pts = x::e1_line_lock_contention(32);
    for pt in &pts {
        if [1, 2, 4, 8, 16, 24, 32].contains(&pt.contenders) {
            let _ = writeln!(p, "{:>10} {:>12.2} {:>12.2}", pt.contenders, pt.mean_us, pt.max_us);
        }
    }
    let csvs = vec![CsvArtifact {
        name: "e1_line_lock",
        header: "contenders,mean_us,max_us",
        rows: pts
            .iter()
            .map(|pt| format!("{},{},{}", pt.contenders, pt.mean_us, pt.max_us))
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op: None }
}

fn e2_cell(fast: bool) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E2 (§1/§3.3): transactions aborted by a single node crash ==");
    let _ = writeln!(p, "   (per-node active txns: 3; the paper's motivation — at KSR-1 scale a");
    let _ = writeln!(p, "    single failure would otherwise affect thousands of transactions)\n");
    let sizes: &[u16] = if fast { &[2, 8, 32] } else { &[2, 8, 32, 128, 1088] };
    let _ = writeln!(
        p,
        "{:>6} {:>8} {:>16} {:>12} {:>8}",
        "nodes", "active", "FA-only aborts", "IFA aborts", "saved"
    );
    let pts = x::e2_abort_counts(sizes, 3);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:>6} {:>8} {:>16} {:>12} {:>7}x",
            pt.nodes,
            pt.active,
            pt.fa_only_aborts,
            pt.ifa_aborts,
            pt.fa_only_aborts / pt.ifa_aborts.max(1)
        );
    }
    let csvs = vec![CsvArtifact {
        name: "e2_abort_counts",
        header: "nodes,active,fa_only_aborts,ifa_aborts",
        rows: pts
            .iter()
            .map(|pt| format!("{},{},{},{}", pt.nodes, pt.active, pt.fa_only_aborts, pt.ifa_aborts))
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op: None }
}

fn e3_cell(mix_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E3 (§4.1.2): Redo All vs Selective Redo recovery cost ==\n");
    let _ = writeln!(
        p,
        "{:<24} {:>8} {:>8} {:>9} {:>8} {:>8} {:>12} {:>7}",
        "protocol", "sharing", "redo", "skipped", "undo", "scanned", "rec cycles", "lost"
    );
    let pts = x::e3_recovery_cost(mix_txns, &[0.1, 0.5, 0.9]);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<24} {:>8.1} {:>8} {:>9} {:>8} {:>8} {:>12} {:>7}",
            pt.protocol,
            pt.sharing,
            pt.redo_applied,
            pt.redo_skipped_cached,
            pt.undo_applied,
            pt.scan_records,
            pt.recovery_cycles,
            pt.lost_lines
        );
    }
    let _ = writeln!(p, "\n   per-phase breakdown of recovery cycles (IFA restart phases):\n");
    let _ = writeln!(
        p,
        "{:<24} {:>8} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "protocol",
        "sharing",
        "st-undo",
        "reinstall",
        "discard",
        "redo",
        "undo",
        "locks",
        "txn-tbl"
    );
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<24} {:>8.1} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
            pt.protocol,
            pt.sharing,
            pt.phase_stable_undo,
            pt.phase_reinstall,
            pt.phase_cache_discard,
            pt.phase_redo,
            pt.phase_undo,
            pt.phase_lock_recovery,
            pt.phase_txn_table
        );
    }
    let csvs = vec![CsvArtifact {
        name: "e3_recovery_cost",
        header: "protocol,sharing,redo_applied,redo_skipped_cached,undo_applied,scan_records,recovery_cycles,lost_lines,\
             phase_stable_undo_cycles,phase_reinstall_cycles,phase_cache_discard_cycles,phase_redo_cycles,\
             phase_undo_cycles,phase_lock_recovery_cycles,phase_txn_table_cycles",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    pt.protocol,
                    pt.sharing,
                    pt.redo_applied,
                    pt.redo_skipped_cached,
                    pt.undo_applied,
                    pt.scan_records,
                    pt.recovery_cycles,
                    pt.lost_lines,
                    pt.phase_stable_undo,
                    pt.phase_reinstall,
                    pt.phase_cache_discard,
                    pt.phase_redo,
                    pt.phase_undo,
                    pt.phase_lock_recovery,
                    pt.phase_txn_table
                )
            })
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op: None }
}

fn e4_cell(mix_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E4 (§5.2/§7): log-force frequency by LBM policy and sharing rate ==\n");
    let _ = writeln!(
        p,
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "protocol", "sharing", "forces", "commit", "LBM", "txns", "cyc/txn"
    );
    let pts = x::e4_log_forces(mix_txns, &[0.0, 0.5, 1.0], false);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<24} {:>8.1} {:>8} {:>8} {:>8} {:>8} {:>12}",
            pt.protocol,
            pt.sharing,
            pt.total_forces,
            pt.commit_forces,
            pt.lbm_forces,
            pt.committed,
            pt.cycles_per_txn
        );
    }
    // BENCH_report.json trajectory figure: mean engine cycles per
    // committed transaction across the policy × sharing grid.
    let cycles_per_op = if pts.is_empty() {
        None
    } else {
        Some(pts.iter().map(|pt| pt.cycles_per_txn).sum::<u64>() / pts.len() as u64)
    };
    let csvs = vec![CsvArtifact {
        name: "e4_log_forces",
        header: "protocol,sharing,total_forces,forces_requested,commit_forces,lbm_forces,committed,cycles_per_txn",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{}",
                    pt.protocol,
                    pt.sharing,
                    pt.total_forces,
                    pt.forces_requested,
                    pt.commit_forces,
                    pt.lbm_forces,
                    pt.committed,
                    pt.cycles_per_txn
                )
            })
            .collect(),
    }];
    let _ = writeln!(p, "\n   ablation: NVRAM log device (§7: Stable LBM becomes affordable)\n");
    let _ = writeln!(p, "{:<24} {:>8} {:>8} {:>12}", "protocol", "sharing", "forces", "cyc/txn");
    for pt in x::e4_log_forces(mix_txns, &[0.5], true) {
        let _ = writeln!(
            p,
            "{:<24} {:>8.1} {:>8} {:>12}",
            pt.protocol, pt.sharing, pt.total_forces, pt.cycles_per_txn
        );
    }
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op }
}

fn e5_cell(mix_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E5 (§7): write-invalidate vs write-broadcast recovery demands ==\n");
    let _ = writeln!(
        p,
        "{:<18} {:>7} {:>7} {:>7} {:>14}",
        "coherence", "lost", "redo", "undo", "traffic (msgs)"
    );
    for pt in x::e5_coherence_comparison(mix_txns) {
        let _ = writeln!(
            p,
            "{:<18} {:>7} {:>7} {:>7} {:>14}",
            pt.coherence, pt.lost_lines, pt.redo_applied, pt.undo_applied, pt.coherence_traffic
        );
    }
    let _ = writeln!(p);
    Section::text_only(s)
}

fn e6_cell(mix_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E6 (§6): update-protocol cost, line locks vs semaphores ==\n");
    let _ = writeln!(
        p,
        "{:<14} {:>12} {:>14} {:>18}",
        "primitive", "cyc/txn", "µs per update", "crit. section µs"
    );
    let pts = x::e6_update_protocol(mix_txns);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<14} {:>12} {:>14.2} {:>18.2}",
            pt.primitive, pt.cycles_per_txn, pt.us_per_update, pt.critical_section_us
        );
    }
    let cycles_per_op = pts.first().map(|pt| pt.cycles_per_txn);
    let _ = writeln!(p);
    Section { text: s, csvs: Vec::new(), cycles_per_op }
}

fn e7_cell() -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E7 (§4.2.2): lock-space recovery after a node crash ==\n");
    let _ = writeln!(
        p,
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "LCB layout", "lines", "released", "rebuilt", "restored", "promoted"
    );
    for pt in x::e7_lock_recovery(4) {
        let _ = writeln!(
            p,
            "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9}",
            pt.layout,
            pt.lines_reinstalled,
            pt.crashed_entries_released,
            pt.lcbs_reconstructed,
            pt.survivor_entries_restored,
            pt.promotions
        );
    }
    let _ = writeln!(p);
    Section::text_only(s)
}

fn e7scale_cell(fast: bool) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E7b: checkpoint-bounded restart — recovery cost vs history length ==");
    let interval = 25;
    let lens: &[usize] = if fast { &[50, 200] } else { &[50, 200, 400] };
    let _ = writeln!(
        p,
        "   sharp checkpoint every {interval} txns vs none; crash one of 8 nodes after the mix\n"
    );
    let _ = writeln!(
        p,
        "{:<24} {:>8} {:>6} {:>9} {:>8} {:>9} {:>12} {:>10}",
        "protocol", "history", "ckpt", "scanned", "redo", "skipped", "rec cycles", "wall µs"
    );
    let pts = x::e7_recovery_scaling(lens, interval);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<24} {:>8} {:>6} {:>9} {:>8} {:>9} {:>12} {:>10}",
            pt.protocol,
            pt.history_txns,
            pt.checkpoint_every,
            pt.scan_records,
            pt.redo_applied,
            pt.redo_skipped,
            pt.recovery_cycles,
            pt.wall_ns / 1_000
        );
    }
    let csvs = vec![CsvArtifact {
        name: "e7_recovery_scaling",
        header: "protocol,history_txns,checkpoint_every,scan_records,redo_applied,redo_skipped,\
             ckpt_bound_lsn,recovery_cycles,wall_ns",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{},{}",
                    pt.protocol,
                    pt.history_txns,
                    pt.checkpoint_every,
                    pt.scan_records,
                    pt.redo_applied,
                    pt.redo_skipped,
                    pt.ckpt_bound_lsn,
                    pt.recovery_cycles,
                    pt.wall_ns
                )
            })
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op: None }
}

fn e9_cell(mix_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E9 (§3.1 ablation): record co-location per cache line ==\n");
    let _ = writeln!(
        p,
        "{:>9} {:>9} {:>12} {:>7} {:>13} {:>11}",
        "recs/line", "rec size", "ww traffic", "lost", "recovery ops", "B/rec slot"
    );
    for pt in x::e9_colocation(mix_txns) {
        let _ = writeln!(
            p,
            "{:>9} {:>9} {:>12} {:>7} {:>13} {:>11}",
            pt.records_per_line,
            pt.rec_data_size,
            pt.coherence_traffic,
            pt.lost_lines,
            pt.recovery_work,
            pt.bytes_per_record_slot
        );
    }
    let _ = writeln!(p);
    Section::text_only(s)
}

fn e8_cell(mix_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E8 (§4.2.1): B-tree recovery ==\n");
    let pt = x::e8_btree_recovery(mix_txns);
    let _ = writeln!(p, "committed index ops:        {}", pt.committed_ops);
    let _ = writeln!(p, "structural early commits:   {}", pt.structural_changes);
    let _ = writeln!(p, "tree pages reinstalled:     {}", pt.pages_reinstalled);
    let _ = writeln!(p, "index redo ops applied:     {}", pt.index_redo_applied);
    let _ = writeln!(p, "index undo ops applied:     {}", pt.index_undo_applied);
    let _ = writeln!(p);
    Section::text_only(s)
}

fn e8fwd_cell(t1_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E8-fwd: forward-path fast lane — TP1 with coalesced log forces ==");
    let _ = writeln!(p, "   (8 nodes, {t1_txns} TP1 transactions per cell; coalescing defers LBM");
    let _ = writeln!(p, "    force requests to the coherence trigger / next covering force)\n");
    let _ = writeln!(
        p,
        "{:<24} {:>9} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "protocol", "coalesce", "txns", "cyc/txn", "requested", "physical", "fast-hits"
    );
    let pts = x::e8_forward_throughput(t1_txns);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<24} {:>9} {:>8} {:>12} {:>10} {:>10} {:>10}",
            pt.protocol,
            if pt.coalesce { "on" } else { "off" },
            pt.committed,
            pt.cycles_per_txn,
            pt.forces_requested,
            pt.physical_forces,
            pt.lock_fast_hits
        );
    }
    // BENCH_report.json trajectory figure: mean cycles/txn across the
    // coalescing-on cells (the fast lane under measurement).
    let on: Vec<&x::ForwardPoint> = pts.iter().filter(|pt| pt.coalesce).collect();
    let cycles_per_op = if on.is_empty() {
        None
    } else {
        Some(on.iter().map(|pt| pt.cycles_per_txn).sum::<u64>() / on.len() as u64)
    };
    let csvs = vec![CsvArtifact {
        name: "e8_forward_throughput",
        header: "protocol,coalesce,committed,cycles_per_txn,tps_per_mcycle,forces_requested,\
             physical_forces,records_forced,lock_fast_hits",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{},{}",
                    pt.protocol,
                    pt.coalesce,
                    pt.committed,
                    pt.cycles_per_txn,
                    pt.tps_per_mcycle,
                    pt.forces_requested,
                    pt.physical_forces,
                    pt.records_forced,
                    pt.lock_fast_hits
                )
            })
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op }
}

fn e9lat_cell(t1_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E9-lat: transaction-latency breakdown by protocol ==");
    let _ = writeln!(p, "   (8 nodes, {t1_txns} TP1 transactions per protocol, spans enabled;");
    let _ = writeln!(p, "    cycles attributed lock-wait / execute / log-append / force-wait /");
    let _ = writeln!(p, "    commit; latencies in simulated cycles)\n");
    let _ = writeln!(
        p,
        "{:<24} {:>6} {:>10} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "protocol", "txns", "p50", "p99", "p999", "lock%", "exec%", "appnd%", "force%", "commit%"
    );
    let pts = x::e9_latency(t1_txns);
    for pt in &pts {
        let total = pt.total_latency_cycles.max(1) as f64;
        let pct = |c: u64| 100.0 * c as f64 / total;
        let _ = writeln!(
            p,
            "{:<24} {:>6} {:>10} {:>10} {:>10} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            pt.protocol,
            pt.committed,
            pt.p50_cycles,
            pt.p99_cycles,
            pt.p999_cycles,
            pct(pt.lock_wait_cycles),
            pct(pt.execute_cycles),
            pct(pt.log_append_cycles),
            pct(pt.force_wait_cycles),
            pct(pt.commit_cycles)
        );
    }
    // BENCH_report.json trajectory figure: mean latency across protocols.
    let cycles_per_op = if pts.is_empty() {
        None
    } else {
        Some(pts.iter().map(|pt| pt.mean_cycles as u64).sum::<u64>() / pts.len() as u64)
    };
    let csvs = vec![CsvArtifact {
        name: "e9_latency",
        header: "protocol,committed,aborted,mean_cycles,p50_cycles,p99_cycles,p999_cycles,\
             max_cycles,total_latency_cycles,lock_wait_cycles,execute_cycles,\
             log_append_cycles,force_wait_cycles,commit_cycles,attributed_fraction",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    pt.protocol,
                    pt.committed,
                    pt.aborted,
                    pt.mean_cycles,
                    pt.p50_cycles,
                    pt.p99_cycles,
                    pt.p999_cycles,
                    pt.max_cycles,
                    pt.total_latency_cycles,
                    pt.lock_wait_cycles,
                    pt.execute_cycles,
                    pt.log_append_cycles,
                    pt.force_wait_cycles,
                    pt.commit_cycles,
                    pt.attributed_fraction
                )
            })
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op }
}

fn e10elr_cell(mix_txns: usize) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E10-elr: early lock release + pipelined group commit ==");
    let _ = writeln!(p, "   (8 nodes, {mix_txns} contended Zipf TP1 txns per cell, pipelined");
    let _ = writeln!(p, "    commit window 8, polling locks, coalesced forces; ELR releases");
    let _ = writeln!(p, "    write locks at commit-record append)\n");
    let _ = writeln!(
        p,
        "{:<24} {:>4} {:>6} {:>10} {:>12} {:>8} {:>9} {:>6} {:>9}",
        "protocol", "elr", "txns", "cyc/txn", "lock-wait", "stalls", "violated", "deps", "rec-frcd"
    );
    let pts = x::e10_elr(mix_txns);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<24} {:>4} {:>6} {:>10} {:>12} {:>8} {:>9} {:>6} {:>9}",
            pt.protocol,
            if pt.elr { "on" } else { "off" },
            pt.committed,
            pt.cycles_per_txn,
            pt.lock_wait_cycles,
            pt.lock_stalls,
            pt.early_released,
            pt.commit_deps,
            pt.records_forced
        );
    }
    // BENCH_report.json trajectory figure: mean cycles/txn across the
    // ELR-on cells (the fast lane under measurement).
    let on: Vec<&x::ElrPoint> = pts.iter().filter(|pt| pt.elr).collect();
    let cycles_per_op = if on.is_empty() {
        None
    } else {
        Some(on.iter().map(|pt| pt.cycles_per_txn).sum::<u64>() / on.len() as u64)
    };
    let csvs = vec![CsvArtifact {
        name: "e10_elr",
        header: "protocol,elr,committed,cycles_per_txn,lock_wait_cycles,lock_stalls,\
             early_released,commit_deps,dep_aborts,forces_requested,physical_forces,\
             records_forced",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{}",
                    pt.protocol,
                    pt.elr,
                    pt.committed,
                    pt.cycles_per_txn,
                    pt.lock_wait_cycles,
                    pt.lock_stalls,
                    pt.early_released,
                    pt.commit_deps,
                    pt.dep_aborts,
                    pt.forces_requested,
                    pt.physical_forces,
                    pt.records_forced
                )
            })
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op }
}

fn e11instant_cell(fast: bool) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let (txns, ckpt) = if fast { (200, 25) } else { (600, 50) };
    let _ = writeln!(p, "== E11: instant restart — serve transactions during recovery ==");
    let _ = writeln!(p, "   (8 nodes, E7b-scale history: {txns} txns, checkpoint every {ckpt};");
    let _ = writeln!(p, "    crash node 0, first txn = locked read in its partition; drain to");
    let _ = writeln!(p, "    completion, then compare end state byte-for-byte with eager)\n");
    let _ = writeln!(
        p,
        "{:<24} {:>8} {:>12} {:>12} {:>6} {:>9} {:>7} {:>7} {:>6}",
        "protocol", "instant", "ttft-cyc", "recovery", "redo", "on-dem", "bkgnd", "skip", "state"
    );
    let pts = x::e11_instant_restart(txns, ckpt);
    for pt in &pts {
        let _ = writeln!(
            p,
            "{:<24} {:>8} {:>12} {:>12} {:>6} {:>9} {:>7} {:>7} {:>6}",
            pt.protocol,
            if pt.instant { "on" } else { "off" },
            pt.ttft_cycles,
            pt.recovery_cycles,
            pt.redo_total,
            pt.redo_on_demand,
            pt.redo_background,
            pt.redo_skipped_stable,
            if pt.matches_committed { "ok" } else { "BAD" },
        );
    }
    for pair in pts.chunks(2) {
        if let [eager, instant] = pair {
            let _ = writeln!(
                p,
                "   {}: TTFT {:.1}x lower, end state {}",
                eager.protocol,
                eager.ttft_cycles as f64 / instant.ttft_cycles.max(1) as f64,
                if eager.state_digest == instant.state_digest { "identical" } else { "DIVERGED" },
            );
        }
    }
    let csvs = vec![CsvArtifact {
        name: "e11_instant_restart",
        header: "protocol,instant,ttft_cycles,recovery_cycles,redo_total,redo_on_demand,\
             redo_background,redo_skipped_stable,state_digest,matches_committed",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{},{:016x},{}",
                    pt.protocol,
                    pt.instant,
                    pt.ttft_cycles,
                    pt.recovery_cycles,
                    pt.redo_total,
                    pt.redo_on_demand,
                    pt.redo_background,
                    pt.redo_skipped_stable,
                    pt.state_digest,
                    pt.matches_committed
                )
            })
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op: None }
}

fn e12mt_cell(fast: bool) -> Section {
    let mut s = String::new();
    let p = &mut s;
    let txns = if fast { 800 } else { 4000 };
    let _ = writeln!(p, "== E12: true multicore execution — epoch lanes on OS threads ==");
    let _ = writeln!(p, "   (8 nodes, 64 coherence shards, {txns} update txns per cell; wall");
    let _ = writeln!(p, "    is host time — the only column allowed to vary with threads)\n");
    let _ = writeln!(
        p,
        "{:<16} {:>7} {:>6} {:>10} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "cell",
        "threads",
        "txns",
        "wall-us",
        "speedup",
        "epochs",
        "max-ep",
        "d-conf",
        "l-conf",
        "retries"
    );
    let pts = x::e12_multicore(txns);
    let mut base = std::collections::BTreeMap::new();
    for pt in &pts {
        let b = *base.entry(pt.cell.clone()).or_insert(pt.wall_micros);
        let _ = writeln!(
            p,
            "{:<16} {:>7} {:>6} {:>10} {:>7.2}x {:>7} {:>7} {:>7} {:>7} {:>8}",
            pt.cell,
            pt.threads,
            pt.committed,
            pt.wall_micros,
            b as f64 / pt.wall_micros.max(1) as f64,
            pt.epochs,
            pt.max_epoch_txns,
            pt.data_conflicts,
            pt.lock_conflicts,
            pt.serial_retries,
        );
    }
    let _ = writeln!(
        p,
        "   (host has {} cores; speedups on smaller hosts understate the engine)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let csvs = vec![CsvArtifact {
        name: "e12_multicore",
        header: "cell,threads,committed,wall_micros,sim_cycles,epochs,max_epoch_txns,\
             data_conflicts,lock_conflicts,epoch_waits,serial_retries,state_digest",
        rows: pts
            .iter()
            .map(|pt| {
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{:016x}",
                    pt.cell,
                    pt.threads,
                    pt.committed,
                    pt.wall_micros,
                    pt.sim_cycles,
                    pt.epochs,
                    pt.max_epoch_txns,
                    pt.data_conflicts,
                    pt.lock_conflicts,
                    pt.epoch_waits,
                    pt.serial_retries,
                    pt.state_digest
                )
            })
            .collect(),
    }];
    let _ = writeln!(p);
    Section { text: s, csvs, cycles_per_op: None }
}

fn e10_cell() -> Section {
    let mut s = String::new();
    let p = &mut s;
    let _ = writeln!(p, "== E10 (§9 extension): parallel transactions widen the blast radius ==");
    let _ = writeln!(p, "   (8 nodes, 2 active txns homed per node, crash one node)\n");
    let _ = writeln!(p, "{:>5} {:>8} {:>9} {:>14}", "fan", "active", "aborted", "kill fraction");
    for pt in x::e10_parallel_blast_radius(2) {
        let _ = writeln!(
            p,
            "{:>5} {:>8} {:>9} {:>13.0}%",
            pt.fan,
            pt.active,
            pt.aborted,
            pt.kill_fraction * 100.0
        );
    }
    let _ = writeln!(p);
    Section::text_only(s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv_on = args.iter().any(|a| a == "--csv");
    let jobs: usize = flag_value(&args, "--jobs", None, "1".into())
        .map(|v| v.parse().expect("--jobs expects a number"))
        .unwrap_or(1)
        .max(1);
    let json_path = flag_value(&args, "--json", None, "BENCH_report.json".into());
    let (t1_txns, mix_txns) = if fast { (120, 60) } else { (400, 200) };

    println!("smdb experiment report — Recovery Protocols for Shared Memory Database Systems");
    println!("(Molesky & Ramamritham, SIGMOD 1995) — simulated reproduction\n");

    // Assemble the enabled cells in the fixed report order. Every cell is
    // a pure function of its parameters, so the merge below is
    // byte-identical for any `--jobs`.
    let mut cells: Vec<Cell> = Vec::new();
    if want(&args, "--table1") {
        cells.push(Cell { name: "table1", run: Box::new(move || table1_cell(t1_txns)) });
    }
    if want(&args, "--e1") {
        cells.push(Cell { name: "e1_line_lock", run: Box::new(e1_cell) });
    }
    if want(&args, "--e2") {
        cells.push(Cell { name: "e2_abort_counts", run: Box::new(move || e2_cell(fast)) });
    }
    if want(&args, "--e3") {
        cells.push(Cell { name: "e3_recovery_cost", run: Box::new(move || e3_cell(mix_txns)) });
    }
    if want(&args, "--e4") {
        cells.push(Cell { name: "e4_log_forces", run: Box::new(move || e4_cell(mix_txns)) });
    }
    if want(&args, "--e5") {
        cells.push(Cell { name: "e5_coherence", run: Box::new(move || e5_cell(mix_txns)) });
    }
    if want(&args, "--e6") {
        cells.push(Cell { name: "e6_update_protocol", run: Box::new(move || e6_cell(mix_txns)) });
    }
    if want(&args, "--e7") {
        cells.push(Cell { name: "e7_lock_recovery", run: Box::new(e7_cell) });
    }
    if want(&args, "--e7scale") {
        cells.push(Cell { name: "e7_recovery_scaling", run: Box::new(move || e7scale_cell(fast)) });
    }
    if want(&args, "--e9") {
        cells.push(Cell { name: "e9_colocation", run: Box::new(move || e9_cell(mix_txns)) });
    }
    if want(&args, "--e8") {
        cells.push(Cell { name: "e8_btree_recovery", run: Box::new(move || e8_cell(mix_txns)) });
    }
    if want(&args, "--e8fwd") {
        cells.push(Cell {
            name: "e8_forward_throughput",
            run: Box::new(move || e8fwd_cell(t1_txns)),
        });
    }
    if want(&args, "--e9lat") {
        cells.push(Cell { name: "e9_latency", run: Box::new(move || e9lat_cell(t1_txns)) });
    }
    if want(&args, "--e10") {
        cells.push(Cell { name: "e10_blast_radius", run: Box::new(e10_cell) });
    }
    if want(&args, "--e10elr") {
        cells.push(Cell { name: "e10_elr", run: Box::new(move || e10elr_cell(mix_txns)) });
    }
    if want(&args, "--e11instant") {
        cells.push(Cell {
            name: "e11_instant_restart",
            run: Box::new(move || e11instant_cell(fast)),
        });
    }
    if want(&args, "--e12mt") {
        cells.push(Cell { name: "e12_multicore", run: Box::new(move || e12mt_cell(fast)) });
    }

    let t0 = Instant::now();
    let results: Vec<CellResult> = x::parallel_map(cells, jobs, |_, cell| {
        let start = Instant::now();
        let section = (cell.run)();
        CellResult { name: cell.name, section, wall_ms: start.elapsed().as_secs_f64() * 1e3 }
    });
    let total_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Merge step: sections then CSV artifacts, in cell order.
    for r in &results {
        print!("{}", r.section.text);
    }
    if csv_on {
        for r in &results {
            for a in &r.section.csvs {
                write_csv(a);
            }
        }
    }
    if let Some(path) = json_path {
        write_json_report(&path, jobs, fast, total_wall_ms, &results);
    }

    println!("done.");
}
