//! Regenerate every paper-mapped table and figure (DESIGN.md §3).
//!
//! ```text
//! cargo run -p smdb-bench --bin report --release              # everything
//! cargo run -p smdb-bench --bin report --release -- --table1  # one artifact
//! ```
//!
//! Flags: `--table1 --e1 --e2 --e3 --e4 --e5 --e6 --e7 --e8 --e9 --e10 --fast`

use smdb_bench as x;
use std::io::Write;

fn want(args: &[String], flag: &str) -> bool {
    let explicit: Vec<&String> =
        args.iter().filter(|a| a.starts_with("--") && *a != "--fast" && *a != "--csv").collect();
    explicit.is_empty() || args.iter().any(|a| a == flag)
}

/// Write one CSV artifact under `results/` when `--csv` is passed.
fn csv(enabled: bool, name: &str, header: &str, rows: &[String]) {
    if !enabled {
        return;
    }
    std::fs::create_dir_all("results").expect("create results/");
    let path = format!("results/{name}.csv");
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv_on = args.iter().any(|a| a == "--csv");
    let (t1_txns, mix_txns) = if fast { (120, 60) } else { (400, 200) };

    println!("smdb experiment report — Recovery Protocols for Shared Memory Database Systems");
    println!("(Molesky & Ramamritham, SIGMOD 1995) — simulated reproduction\n");

    if want(&args, "--table1") {
        println!("== Table 1: incremental overheads of protocols ensuring IFA ==");
        println!("   workload: TP1 debit-credit, 8 nodes, {t1_txns} transactions, history index\n");
        let rows = x::table1_overheads(t1_txns);
        println!(
            "{:<24} {:>10} {:>10} {:>9} {:>10} {:>9}",
            "protocol", "structural", "read-lock", "undo-tag", "LBM", "committed"
        );
        println!(
            "{:<24} {:>10} {:>10} {:>9} {:>10} {:>9}",
            "", "early-cmts", "log recs", "writes", "forces", "txns"
        );
        for r in &rows {
            println!(
                "{:<24} {:>10} {:>10} {:>9} {:>10} {:>9}",
                r.protocol,
                r.structural_early_commits,
                r.read_lock_records,
                r.undo_tag_writes,
                r.lbm_forces,
                r.committed
            );
        }
        csv(
            csv_on,
            "table1",
            "protocol,structural_early_commits,read_lock_records,undo_tag_writes,lbm_forces,commit_forces,committed",
            &rows
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},{},{},{},{}",
                        r.protocol,
                        r.structural_early_commits,
                        r.read_lock_records,
                        r.undo_tag_writes,
                        r.lbm_forces,
                        r.commit_forces,
                        r.committed
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!("\n   paper's checkmark matrix (✓ = overhead incurred), derived from the counts:");
        println!(
            "{:<32} {:>12} {:>18} {:>12}",
            "overhead", "Stable LBM", "Vol.+SelectiveRedo", "Vol.+RedoAll"
        );
        let find = |s: &str| rows.iter().find(|r| r.protocol.contains(s)).expect("row");
        let sel = find("VolatileSelective");
        let all = find("VolatileRedoAll");
        let stable = find("StableTriggered");
        let mark = |v: u64| if v > 0 { "✓" } else { "—" };
        println!(
            "{:<32} {:>12} {:>18} {:>12}",
            "early commit of structural chgs",
            mark(stable.structural_early_commits),
            mark(sel.structural_early_commits),
            mark(all.structural_early_commits)
        );
        println!(
            "{:<32} {:>12} {:>18} {:>12}",
            "logging of read locks",
            mark(stable.read_lock_records),
            mark(sel.read_lock_records),
            mark(all.read_lock_records)
        );
        println!(
            "{:<32} {:>12} {:>18} {:>12}",
            "undo tagging",
            mark(stable.undo_tag_writes),
            mark(sel.undo_tag_writes),
            mark(all.undo_tag_writes)
        );
        println!(
            "{:<32} {:>12} {:>18} {:>12}",
            "higher frequency of log forces",
            mark(stable.lbm_forces),
            mark(sel.lbm_forces),
            mark(all.lbm_forces)
        );
        println!();
    }

    if want(&args, "--e1") {
        println!("== E1 (§5.1): line-lock acquisition latency vs contention ==");
        println!("   paper (KSR-1 measurements): <10 µs uncontended, <40 µs at 32-way\n");
        println!("{:>10} {:>12} {:>12}", "contenders", "mean (µs)", "max (µs)");
        let pts = x::e1_line_lock_contention(32);
        for p in &pts {
            if [1, 2, 4, 8, 16, 24, 32].contains(&p.contenders) {
                println!("{:>10} {:>12.2} {:>12.2}", p.contenders, p.mean_us, p.max_us);
            }
        }
        csv(
            csv_on,
            "e1_line_lock",
            "contenders,mean_us,max_us",
            &pts.iter()
                .map(|p| format!("{},{},{}", p.contenders, p.mean_us, p.max_us))
                .collect::<Vec<_>>(),
        );
        println!();
    }

    if want(&args, "--e2") {
        println!("== E2 (§1/§3.3): transactions aborted by a single node crash ==");
        println!("   (per-node active txns: 3; the paper's motivation — at KSR-1 scale a");
        println!("    single failure would otherwise affect thousands of transactions)\n");
        let sizes: &[u16] = if fast { &[2, 8, 32] } else { &[2, 8, 32, 128, 1088] };
        println!(
            "{:>6} {:>8} {:>16} {:>12} {:>8}",
            "nodes", "active", "FA-only aborts", "IFA aborts", "saved"
        );
        let pts = x::e2_abort_counts(sizes, 3);
        for p in &pts {
            println!(
                "{:>6} {:>8} {:>16} {:>12} {:>7}x",
                p.nodes,
                p.active,
                p.fa_only_aborts,
                p.ifa_aborts,
                p.fa_only_aborts / p.ifa_aborts.max(1)
            );
        }
        csv(
            csv_on,
            "e2_abort_counts",
            "nodes,active,fa_only_aborts,ifa_aborts",
            &pts.iter()
                .map(|p| format!("{},{},{},{}", p.nodes, p.active, p.fa_only_aborts, p.ifa_aborts))
                .collect::<Vec<_>>(),
        );
        println!();
    }

    if want(&args, "--e3") {
        println!("== E3 (§4.1.2): Redo All vs Selective Redo recovery cost ==\n");
        println!(
            "{:<24} {:>8} {:>8} {:>9} {:>8} {:>12} {:>7}",
            "protocol", "sharing", "redo", "skipped", "undo", "rec cycles", "lost"
        );
        let pts = x::e3_recovery_cost(mix_txns, &[0.1, 0.5, 0.9]);
        for p in &pts {
            println!(
                "{:<24} {:>8.1} {:>8} {:>9} {:>8} {:>12} {:>7}",
                p.protocol,
                p.sharing,
                p.redo_applied,
                p.redo_skipped_cached,
                p.undo_applied,
                p.recovery_cycles,
                p.lost_lines
            );
        }
        println!("\n   per-phase breakdown of recovery cycles (IFA restart phases):\n");
        println!(
            "{:<24} {:>8} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "protocol",
            "sharing",
            "st-undo",
            "reinstall",
            "discard",
            "redo",
            "undo",
            "locks",
            "txn-tbl"
        );
        for p in &pts {
            println!(
                "{:<24} {:>8.1} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
                p.protocol,
                p.sharing,
                p.phase_stable_undo,
                p.phase_reinstall,
                p.phase_cache_discard,
                p.phase_redo,
                p.phase_undo,
                p.phase_lock_recovery,
                p.phase_txn_table
            );
        }
        csv(
            csv_on,
            "e3_recovery_cost",
            "protocol,sharing,redo_applied,redo_skipped_cached,undo_applied,recovery_cycles,lost_lines,\
             phase_stable_undo_cycles,phase_reinstall_cycles,phase_cache_discard_cycles,phase_redo_cycles,\
             phase_undo_cycles,phase_lock_recovery_cycles,phase_txn_table_cycles",
            &pts.iter()
                .map(|p| {
                    format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                        p.protocol,
                        p.sharing,
                        p.redo_applied,
                        p.redo_skipped_cached,
                        p.undo_applied,
                        p.recovery_cycles,
                        p.lost_lines,
                        p.phase_stable_undo,
                        p.phase_reinstall,
                        p.phase_cache_discard,
                        p.phase_redo,
                        p.phase_undo,
                        p.phase_lock_recovery,
                        p.phase_txn_table
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!();
    }

    if want(&args, "--e4") {
        println!("== E4 (§5.2/§7): log-force frequency by LBM policy and sharing rate ==\n");
        println!(
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
            "protocol", "sharing", "forces", "commit", "LBM", "txns", "cyc/txn"
        );
        let pts = x::e4_log_forces(mix_txns, &[0.0, 0.5, 1.0], false);
        for p in &pts {
            println!(
                "{:<24} {:>8.1} {:>8} {:>8} {:>8} {:>8} {:>12}",
                p.protocol,
                p.sharing,
                p.total_forces,
                p.commit_forces,
                p.lbm_forces,
                p.committed,
                p.cycles_per_txn
            );
        }
        csv(
            csv_on,
            "e4_log_forces",
            "protocol,sharing,total_forces,commit_forces,lbm_forces,committed,cycles_per_txn",
            &pts.iter()
                .map(|p| {
                    format!(
                        "{},{},{},{},{},{},{}",
                        p.protocol,
                        p.sharing,
                        p.total_forces,
                        p.commit_forces,
                        p.lbm_forces,
                        p.committed,
                        p.cycles_per_txn
                    )
                })
                .collect::<Vec<_>>(),
        );
        println!("\n   ablation: NVRAM log device (§7: Stable LBM becomes affordable)\n");
        println!("{:<24} {:>8} {:>8} {:>12}", "protocol", "sharing", "forces", "cyc/txn");
        for p in x::e4_log_forces(mix_txns, &[0.5], true) {
            println!(
                "{:<24} {:>8.1} {:>8} {:>12}",
                p.protocol, p.sharing, p.total_forces, p.cycles_per_txn
            );
        }
        println!();
    }

    if want(&args, "--e5") {
        println!("== E5 (§7): write-invalidate vs write-broadcast recovery demands ==\n");
        println!(
            "{:<18} {:>7} {:>7} {:>7} {:>14}",
            "coherence", "lost", "redo", "undo", "traffic (msgs)"
        );
        for p in x::e5_coherence_comparison(mix_txns) {
            println!(
                "{:<18} {:>7} {:>7} {:>7} {:>14}",
                p.coherence, p.lost_lines, p.redo_applied, p.undo_applied, p.coherence_traffic
            );
        }
        println!();
    }

    if want(&args, "--e6") {
        println!("== E6 (§6): update-protocol cost, line locks vs semaphores ==\n");
        println!(
            "{:<14} {:>12} {:>14} {:>18}",
            "primitive", "cyc/txn", "µs per update", "crit. section µs"
        );
        for p in x::e6_update_protocol(mix_txns) {
            println!(
                "{:<14} {:>12} {:>14.2} {:>18.2}",
                p.primitive, p.cycles_per_txn, p.us_per_update, p.critical_section_us
            );
        }
        println!();
    }

    if want(&args, "--e7") {
        println!("== E7 (§4.2.2): lock-space recovery after a node crash ==\n");
        println!(
            "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "LCB layout", "lines", "released", "rebuilt", "restored", "promoted"
        );
        for p in x::e7_lock_recovery(4) {
            println!(
                "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9}",
                p.layout,
                p.lines_reinstalled,
                p.crashed_entries_released,
                p.lcbs_reconstructed,
                p.survivor_entries_restored,
                p.promotions
            );
        }
        println!();
    }

    if want(&args, "--e9") {
        println!("== E9 (§3.1 ablation): record co-location per cache line ==\n");
        println!(
            "{:>9} {:>9} {:>12} {:>7} {:>13} {:>11}",
            "recs/line", "rec size", "ww traffic", "lost", "recovery ops", "B/rec slot"
        );
        for p in x::e9_colocation(mix_txns) {
            println!(
                "{:>9} {:>9} {:>12} {:>7} {:>13} {:>11}",
                p.records_per_line,
                p.rec_data_size,
                p.coherence_traffic,
                p.lost_lines,
                p.recovery_work,
                p.bytes_per_record_slot
            );
        }
        println!();
    }

    if want(&args, "--e8") {
        println!("== E8 (§4.2.1): B-tree recovery ==\n");
        let p = x::e8_btree_recovery(mix_txns);
        println!("committed index ops:        {}", p.committed_ops);
        println!("structural early commits:   {}", p.structural_changes);
        println!("tree pages reinstalled:     {}", p.pages_reinstalled);
        println!("index redo ops applied:     {}", p.index_redo_applied);
        println!("index undo ops applied:     {}", p.index_undo_applied);
        println!();
    }

    if want(&args, "--e10") {
        println!("== E10 (§9 extension): parallel transactions widen the blast radius ==");
        println!("   (8 nodes, 2 active txns homed per node, crash one node)\n");
        println!("{:>5} {:>8} {:>9} {:>14}", "fan", "active", "aborted", "kill fraction");
        for p in x::e10_parallel_blast_radius(2) {
            println!(
                "{:>5} {:>8} {:>9} {:>13.0}%",
                p.fan,
                p.active,
                p.aborted,
                p.kill_fraction * 100.0
            );
        }
        println!();
    }

    println!("done.");
}
