//! Deterministic schedule fuzzer CLI (DESIGN.md §13).
//!
//! ```text
//! cargo run -p smdb-bench --bin fuzz --release -- --seed 0xC0DE --budget 500
//! cargo run -p smdb-bench --bin fuzz --release -- --replay "VOPR seed=0x… cfg=… …"
//! ```
//!
//! Flags: `--seed S` (master seed, default 0xC0DE; accepts decimal or
//! 0x-hex), `--budget N` (schedules to run, default 500),
//! `--shrink-budget N` (candidate replays per failing schedule, default
//! 400), `--replay "LINE"` (replay one repro line — the fuzzer's own
//! `VOPR …` form or a crash-sweep `FAIL …` line — instead of fuzzing).
//!
//! Exit status: 0 when every schedule passed (or the replayed line
//! reproduced its recorded verdict), 1 on oracle failures (each printed
//! as a shrunk one-line repro) or a replay mismatch, 2 on usage errors.

use std::process::ExitCode;

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    r.map_err(|_| format!("bad number {s:?}"))
}

fn usage() -> ExitCode {
    eprintln!("usage: fuzz [--seed S] [--budget N] [--shrink-budget N] [--replay \"LINE\"]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seed: u64 = 0xC0DE;
    let mut budget: u64 = 500;
    let mut shrink_budget: u64 = 400;
    let mut replay: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let r = match flag.as_str() {
            "--seed" => value("--seed").and_then(|v| parse_u64(&v)).map(|v| seed = v),
            "--budget" => value("--budget").and_then(|v| parse_u64(&v)).map(|v| budget = v),
            "--shrink-budget" => {
                value("--shrink-budget").and_then(|v| parse_u64(&v)).map(|v| shrink_budget = v)
            }
            "--replay" => value("--replay").map(|v| replay = Some(v)),
            _ => Err(format!("unknown flag {flag:?}")),
        };
        if let Err(e) = r {
            eprintln!("fuzz: {e}");
            return usage();
        }
    }

    if let Some(line) = replay {
        return match smdb_vopr::replay_line(&line) {
            Ok(report) => {
                let verdict = match &report.outcome.failure {
                    Some((oracle, detail)) => format!("failed oracle {oracle}: {detail}"),
                    None => "passed all oracles".to_string(),
                };
                println!(
                    "replay seed={:#x} committed={} fired={} :: {}",
                    report.repro.seed,
                    report.outcome.committed,
                    report.outcome.fired.len(),
                    verdict,
                );
                if report.reproduced {
                    println!("reproduced: the line's recorded verdict holds");
                    ExitCode::SUCCESS
                } else {
                    println!("NOT reproduced: the line's recorded verdict did not recur");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("fuzz: cannot parse repro line: {e}");
                ExitCode::from(2)
            }
        };
    }

    println!("fuzz: master seed {seed:#x}, {budget} schedules, shrink budget {shrink_budget}");
    let out = smdb_vopr::fuzz_with(seed, budget, shrink_budget, None, &mut |f| {
        eprintln!(
            "schedule {} FAILED oracle {} (shrink: {} runs, {} accepted)",
            f.schedule, f.oracle, f.shrink.runs, f.shrink.accepted,
        );
        eprintln!("  {}", f.line);
    });
    println!(
        "schedules={} committed={} fired={} stalls={} failures={}",
        out.schedules,
        out.committed,
        out.fired,
        out.stalls,
        out.failures.len(),
    );
    for f in &out.failures {
        println!("{}", f.line);
    }
    if out.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
