//! E3/F2 — §4.1.2: restart-recovery cost, Redo All vs Selective Redo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smdb_bench::mix_then_crash;
use smdb_core::ProtocolKind;
use std::hint::black_box;

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    for p in [
        ProtocolKind::VolatileRedoAll,
        ProtocolKind::VolatileSelectiveRedo,
        ProtocolKind::StableTriggered,
        ProtocolKind::FaOnly,
    ] {
        group.bench_with_input(
            BenchmarkId::new("mix_then_crash", format!("{p:?}")),
            &p,
            |b, &p| b.iter(|| black_box(mix_then_crash(p, 60, 0.5))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
