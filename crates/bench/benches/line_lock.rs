//! E1 — §5.1: line-lock primitive costs (paper: <10 µs uncontended,
//! <40 µs mean at 32-way contention).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smdb_sim::{contended_line_lock_costs, CostModel, LineId, Machine, NodeId, SimConfig};
use std::hint::black_box;

/// Wall-clock cost of the simulated getline/releaseline pair (the
/// simulator's hot path), plus the analytic contention sweep.
fn bench_line_lock(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_lock");
    // Host-time cost of the simulated primitive.
    let mut m = Machine::new(SimConfig::new(2));
    m.create_line_at(NodeId(0), LineId(1), &[0u8]).expect("create");
    group.bench_function("getline_releaseline_local", |b| {
        b.iter(|| {
            m.getline(NodeId(0), LineId(1)).expect("lock");
            m.releaseline(NodeId(0), LineId(1)).expect("unlock");
        })
    });
    group.bench_function("getline_releaseline_pingpong", |b| {
        let mut who = 0u16;
        b.iter(|| {
            let n = NodeId(who % 2);
            who += 1;
            m.getline(n, LineId(1)).expect("lock");
            m.releaseline(n, LineId(1)).expect("unlock");
        })
    });
    // Analytic simulated-latency sweep (values recorded in EXPERIMENTS.md).
    let cost = CostModel::default();
    for k in [1u32, 8, 32] {
        group.bench_with_input(BenchmarkId::new("contention_model", k), &k, |b, &k| {
            b.iter(|| black_box(contended_line_lock_costs(&cost, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_line_lock);
criterion_main!(benches);
