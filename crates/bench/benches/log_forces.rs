//! E4 — §5.2/§7: log-force frequency by LBM policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smdb_bench::e4_log_forces;
use std::hint::black_box;

fn bench_log_forces(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_forces");
    group.sample_size(10);
    for sharing in [0.0f64, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("sweep_protocols", format!("sharing={sharing}")),
            &sharing,
            |b, &s| b.iter(|| black_box(e4_log_forces(40, &[s], false))),
        );
    }
    group.bench_function("nvram_ablation", |b| {
        b.iter(|| black_box(e4_log_forces(40, &[0.5], true)))
    });
    group.finish();
}

criterion_group!(benches, bench_log_forces);
criterion_main!(benches);
