//! E6 — §6: the update protocol under line locks vs semaphores, plus the
//! raw engine update path (host time).

use criterion::{criterion_group, criterion_main, Criterion};
use smdb_bench::e6_update_protocol;
use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_sim::NodeId;
use std::hint::black_box;

fn bench_update_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_protocol");
    group.sample_size(10);
    group.bench_function("line_locks_vs_semaphores", |b| {
        b.iter(|| black_box(e6_update_protocol(40)))
    });
    // Host-time microbenchmark of one committed single-update transaction.
    let mut db = SmDb::new(DbConfig::bench(4, ProtocolKind::VolatileSelectiveRedo).without_index());
    let mut slot = 0u64;
    group.bench_function("engine_update_commit", |b| {
        b.iter(|| {
            let t = db.begin(NodeId(0)).expect("begin");
            slot = (slot + 1) % db.record_count() as u64;
            db.update(t, slot, b"benchval").expect("update");
            db.commit(t).expect("commit");
        })
    });
    group.finish();
}

criterion_group!(benches, bench_update_protocol);
criterion_main!(benches);
