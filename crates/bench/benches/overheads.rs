//! T1 — Table 1: normal-operation overheads of the IFA protocols, plus
//! per-protocol TP1 throughput (host time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smdb_bench::table1_overheads;
use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_workload::{run_tp1, Tp1Params};
use std::hint::black_box;

fn bench_overheads(c: &mut Criterion) {
    let mut group = c.benchmark_group("overheads");
    group.sample_size(10);
    group.bench_function("table1_matrix", |b| b.iter(|| black_box(table1_overheads(60))));
    for p in ProtocolKind::all() {
        group.bench_with_input(BenchmarkId::new("tp1", format!("{p:?}")), &p, |b, &p| {
            b.iter(|| {
                let mut db = SmDb::new(DbConfig::bench(8, p));
                black_box(run_tp1(&mut db, Tp1Params { txns: 40, ..Default::default() }))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overheads);
criterion_main!(benches);
