//! E2 — §1/§3.3: aborts per single-node crash, FA-only vs IFA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smdb_bench::e2_abort_counts;
use std::hint::black_box;

fn bench_abort_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("abort_counts");
    group.sample_size(10);
    for nodes in [4u16, 16] {
        group.bench_with_input(BenchmarkId::new("crash_one_of", nodes), &nodes, |b, &n| {
            b.iter(|| black_box(e2_abort_counts(&[n], 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_abort_counts);
criterion_main!(benches);
