//! E5 — §7: write-invalidate vs write-broadcast.

use criterion::{criterion_group, criterion_main, Criterion};
use smdb_bench::e5_coherence_comparison;
use std::hint::black_box;

fn bench_coherence(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence");
    group.sample_size(10);
    group.bench_function("invalidate_vs_broadcast", |b| {
        b.iter(|| black_box(e5_coherence_comparison(40)))
    });
    group.finish();
}

criterion_group!(benches, bench_coherence);
criterion_main!(benches);
