//! Observability overhead: an emission site must cost a single relaxed
//! atomic load + branch while disabled — the event-construction closure is
//! never called and no lock is taken. Compare disabled vs enabled costs
//! for the bus, the registry, and a full instrumented engine update.

use criterion::{criterion_group, criterion_main, Criterion};
use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_obs::{Event, Obs};
use smdb_sim::NodeId;
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let obs = Obs::new();
    group.bench_function("bus_emit_disabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.bus.emit(black_box(t), || Event::WriteLocal { node: 1, line: 2 });
        })
    });
    group.bench_function("metrics_observe_disabled", |b| {
        b.iter(|| obs.metrics.observe("bench.lat", black_box(42)))
    });

    obs.enable(4096);
    group.bench_function("bus_emit_enabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.bus.emit(black_box(t), || Event::WriteLocal { node: 1, line: 2 });
        })
    });
    group.bench_function("metrics_observe_enabled", |b| {
        b.iter(|| obs.metrics.observe("bench.lat", black_box(42)))
    });

    // End-to-end: the same committed single-update transaction with
    // instrumentation off and on (every layer's emission sites run).
    for (label, enable) in [("txn_obs_disabled", false), ("txn_obs_enabled", true)] {
        let mut db = SmDb::new(DbConfig::small(2, ProtocolKind::VolatileSelectiveRedo));
        if enable {
            db.observability().enable(4096);
        }
        let mut rec = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                let t = db.begin(NodeId(0)).expect("begin");
                db.update(t, rec % 64, b"payload!").expect("update");
                db.commit(t).expect("commit");
                rec += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
