//! Observability overhead: an emission site must cost a single relaxed
//! atomic load + branch while disabled — the event-construction closure is
//! never called and no lock is taken. Compare disabled vs enabled costs
//! for the bus, the registry, and a full instrumented engine update.

use criterion::{criterion_group, criterion_main, Criterion};
use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_obs::{Event, Obs, Stage};
use smdb_sim::{LineId, Machine, NodeId, SimConfig, METRIC_BUF_REUSE, METRIC_INDEX_PROBES};
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let obs = Obs::new();
    group.bench_function("bus_emit_disabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.bus.emit(black_box(t), || Event::WriteLocal { node: 1, line: 2 });
        })
    });
    group.bench_function("metrics_observe_disabled", |b| {
        b.iter(|| obs.metrics.observe("bench.lat", black_box(42)))
    });
    // The flat-simulator hot-path counters (`sim.index_probes`,
    // `sim.buf_reuse`) use exactly these two registry entry points from
    // `Machine::slot_of` and `Machine::alloc_slot`. While observability
    // is disabled they must cost one relaxed atomic load + branch — the
    // counter name is never hashed and no lock is taken — so these two
    // benches must track `metrics_observe_disabled` (sub-nanosecond),
    // not the `*_enabled` variants below.
    group.bench_function("metrics_add_index_probes_disabled", |b| {
        b.iter(|| obs.metrics.add(METRIC_INDEX_PROBES, black_box(3)))
    });
    group.bench_function("metrics_inc_buf_reuse_disabled", |b| {
        b.iter(|| obs.metrics.inc(black_box(METRIC_BUF_REUSE)))
    });
    // The span tracker and availability timeline share the same
    // contract: while disabled, every entry point the engine calls per
    // transaction (`begin`/`add`/`end`, `on_begin`/`on_commit`) is one
    // relaxed load + branch — no map lookup, no lock, no bucket math.
    group.bench_function("span_begin_disabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.spans.begin(black_box(t), 0, t);
        })
    });
    group.bench_function("span_add_disabled", |b| {
        b.iter(|| obs.spans.add(black_box(7), Stage::Execute, black_box(42)))
    });
    group.bench_function("timeline_on_commit_disabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.timeline.on_commit(black_box(t), 42, 1);
        })
    });

    obs.enable(4096);
    group.bench_function("bus_emit_enabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.bus.emit(black_box(t), || Event::WriteLocal { node: 1, line: 2 });
        })
    });
    group.bench_function("metrics_observe_enabled", |b| {
        b.iter(|| obs.metrics.observe("bench.lat", black_box(42)))
    });
    group.bench_function("span_full_cycle_enabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.spans.begin(black_box(t), 0, t);
            obs.spans.add(t, Stage::Execute, 42);
            black_box(obs.spans.end(t, t + 100, true));
        })
    });
    group.bench_function("timeline_on_commit_enabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            obs.timeline.on_commit(black_box(t), 42, 1);
        })
    });

    // The same sites measured in situ: a cached-line read goes through
    // `slot_of` (index-probe emission) on every access. Disabled vs
    // enabled isolates the per-read cost of the counter pair.
    for (label, enable) in [("sim_read_obs_disabled", false), ("sim_read_obs_enabled", true)] {
        let mut m = Machine::new(SimConfig::new(2));
        if enable {
            m.obs().enable(4096);
        }
        for l in 0..64u64 {
            m.create_line_at(NodeId(0), LineId(l), &[0]).expect("create");
        }
        let mut buf = [0u8; 1];
        let mut l = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                l = (l + 1) % 64;
                m.read_into(NodeId(0), LineId(black_box(l)), 0, &mut buf).expect("read");
                black_box(buf[0]);
            })
        });
    }

    // End-to-end: the same committed single-update transaction with
    // instrumentation off and on (every layer's emission sites run).
    for (label, enable) in [("txn_obs_disabled", false), ("txn_obs_enabled", true)] {
        let mut db = SmDb::new(DbConfig::small(2, ProtocolKind::VolatileSelectiveRedo));
        if enable {
            db.observability().enable(4096);
        }
        let mut rec = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                let t = db.begin(NodeId(0)).expect("begin");
                db.update(t, rec % 64, b"payload!").expect("update");
                db.commit(t).expect("commit");
                rec += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
