//! Determinism regression tests for the multicore epoch scheduler: the
//! same seed must produce byte-identical results at every thread count,
//! with and without a recorded schedule tape, and the engine must come
//! out of a multicore run fully recoverable.

use smdb_core::{DbConfig, ProtocolKind, SmDb};
use smdb_sim::NodeId;
use smdb_workload::{run_mix_mt, threads_from_env, MixParams};

fn engine(protocol: ProtocolKind) -> SmDb {
    SmDb::new(DbConfig::small(4, protocol).with_sim_shards(32))
}

fn params() -> MixParams {
    MixParams {
        txns: 200,
        ops_per_txn: 4,
        read_fraction: 0.25,
        sharing: 0.2,
        shared_slots: 16,
        zipf_theta: 0.5,
        seed: 0xD5,
        ..Default::default()
    }
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

/// FNV-1a over every committed record image, in slot order.
fn data_digest(db: &SmDb) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for slot in 0..db.record_count() as u64 {
        fnv(&mut h, &db.read_committed(slot).expect("slot readable"));
    }
    h
}

/// Per-node (record count, FNV of the debug rendering of every record).
/// Catches any divergence in log contents, order, or LSNs.
fn log_digests(db: &SmDb) -> Vec<(usize, u64)> {
    (0..db.config().nodes)
        .map(|n| {
            let records = db.logs().log(NodeId(n)).records();
            let mut h = 0xcbf29ce484222325u64;
            for r in records {
                fnv(&mut h, format!("{r:?}").as_bytes());
            }
            (records.len(), h)
        })
        .collect()
}

#[test]
fn same_seed_same_bytes_at_every_thread_count() {
    // `SMDB_THREADS` joins the sweep so the CI matrix (1 and 4) drives
    // this gate at the matrix value even if the literal list changes.
    let mut base = None;
    for threads in [1usize, 2, 4, threads_from_env()] {
        let mut db = engine(ProtocolKind::VolatileSelectiveRedo);
        let (report, out) = run_mix_mt(&mut db, params(), threads).expect("mt run");
        assert_eq!(report.committed, 200, "every transaction commits eventually");
        let snapshot = (report, out, data_digest(&db), log_digests(&db), db.max_clock());
        match &base {
            None => base = Some(snapshot),
            Some(b) => assert_eq!(
                *b, snapshot,
                "thread count {threads} diverged from the single-threaded run"
            ),
        }
    }
}

#[test]
fn recorded_tape_replays_identically_across_threads() {
    // Record a fuzzed admission schedule single-threaded…
    let mut db1 = engine(ProtocolKind::VolatileSelectiveRedo);
    let sched1 = db1.sched_handle();
    sched1.start_recording(0xBEEF);
    let (rep1, out1) = run_mix_mt(&mut db1, params(), 1).expect("recording run");
    assert!(
        sched1.recorded_sites().contains(&smdb_core::SITE_ADMIT),
        "recording run drew at the admission site"
    );
    let tape = sched1.take_tape();
    assert!(out1.deferred > 0, "fuzzed schedule deferred at least one admission");

    // …and replay the identical tape on four threads.
    let mut db2 = engine(ProtocolKind::VolatileSelectiveRedo);
    let sched2 = db2.sched_handle();
    sched2.start_replay(tape);
    let (rep2, out2) = run_mix_mt(&mut db2, params(), 4).expect("replay run");
    assert_eq!(sched2.overrun(), 0, "replay consumed exactly the recorded draws");
    assert_eq!(rep1, rep2);
    assert_eq!(out1, out2);
    assert_eq!(data_digest(&db1), data_digest(&db2));
    assert_eq!(log_digests(&db1), log_digests(&db2));
    assert_eq!(db1.max_clock(), db2.max_clock());
}

#[test]
fn engine_recovers_after_multicore_run() {
    let mut db = engine(ProtocolKind::VolatileSelectiveRedo);
    let (report, _) = run_mix_mt(&mut db, params(), 2).expect("mt run");
    assert_eq!(report.committed, 200);
    let before = data_digest(&db);
    let outcome = db.crash_and_recover(&[NodeId(1)]).expect("recovery");
    assert!(outcome.aborted.is_empty(), "no active transactions to abort");
    assert_eq!(data_digest(&db), before, "committed data survived the crash");
    db.check_ifa(NodeId(0)).assert_ok();
}

#[test]
fn contended_stable_run_reports_scheduler_pressure() {
    // Full-sharing Zipf mix on Stable-LBM-with-coalescing: epochs must
    // split (stripe and lock collisions), and lane commits must drain
    // pending coalesced-force windows (appender stalls).
    let mut db = SmDb::new(
        DbConfig::small(4, ProtocolKind::StableEager).with_sim_shards(32).with_coalesced_forces(),
    );
    db.enable_observability(1024);
    let p = MixParams {
        txns: 120,
        ops_per_txn: 4,
        read_fraction: 0.0,
        sharing: 1.0,
        shared_slots: 4,
        zipf_theta: 0.95,
        seed: 0xC0,
        ..Default::default()
    };
    let (report, out) = run_mix_mt(&mut db, p, 4).expect("contended run");
    assert_eq!(report.committed, 120);
    assert!(out.epochs > 1, "contention must split the run into epochs");
    assert!(
        out.data_conflicts + out.lock_conflicts > 0,
        "full sharing must collide on stripes or lock names"
    );
    assert!(out.epoch_waits > 0, "collisions must stall nodes across epochs");
    // Lane commits drain the pending coalesced-force window in-commit;
    // barrier drains cover whatever a lane left volatile. Either way the
    // appender-stall metric must have fired on this protocol.
    let metrics = db.observability().metrics;
    assert!(
        metrics.counter("wal.appender_stalls") + out.appender_stalls > 0,
        "coalesced windows must drain at lane commits or barriers"
    );
}
