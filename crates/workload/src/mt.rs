//! Multicore driver for the record-update mix: the same deterministic
//! generator as [`run_mix`](crate::run_mix), executed through the
//! engine's epoch scheduler ([`smdb_core::mt`]) on real OS threads.
//!
//! The whole workload is generated up front (the generator never observes
//! execution, so generation order equals the serial driver's program
//! order), handed to [`SmDb::run_epochs`], and summarised in the same
//! [`MixReport`] shape the serial driver produces — byte-identical at
//! every thread count, which is what the determinism regression tests
//! assert.

use crate::mix::{Generator, MixParams, MixReport, Op};
use smdb_core::mt::{MtOp, MtOutcome, MtTxn};
use smdb_core::{DbError, SmDb};
use smdb_sim::NodeId;

/// Thread count for multicore runs, from the `SMDB_THREADS` environment
/// variable (default 1, the serial execution of the same scheduler).
pub fn threads_from_env() -> usize {
    std::env::var("SMDB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// Generate the mix and run it through the epoch scheduler on up to
/// `threads` OS threads. Returns the usual report plus the scheduler's
/// outcome. Requires the serial feature set: no index operations
/// (`index_fraction == 0`), no checkpoints, no pipelined commits.
pub fn run_mix_mt(
    db: &mut SmDb,
    params: MixParams,
    threads: usize,
) -> Result<(MixReport, MtOutcome), DbError> {
    assert_eq!(params.index_fraction, 0.0, "mt mix excludes index operations");
    assert_eq!(params.checkpoint_every, 0, "mt mix excludes checkpoints");
    assert_eq!(params.commit_window, 0, "mt mix excludes pipelined commits");
    let mut g = Generator::new(db, params);
    let nodes = g.nodes;
    let mut txns = Vec::with_capacity(g.params.txns);
    for i in 0..g.params.txns {
        let node = NodeId((i % nodes as usize) as u16);
        let ops = g
            .gen_txn_ops(node, false)
            .into_iter()
            .map(|op| match op {
                Op::Read(slot) => MtOp::Read { slot },
                Op::Update(slot, v) => MtOp::Update { slot, data: v.to_vec() },
                Op::Insert(..) | Op::Delete(..) => {
                    unreachable!("generator emits no index ops without an index")
                }
            })
            .collect();
        txns.push(MtTxn { node, ops });
    }
    let total_ops: u64 = txns.iter().map(|t| t.ops.len() as u64).sum();

    let clock0 = db.max_clock();
    let requested0 = db.logs().total_forces_requested();
    let physical0 = db.logs().total_forces();
    let records0 = db.logs().total_records_forced();
    let out = db.run_epochs(txns, threads)?;
    let report = MixReport {
        committed: out.committed,
        conflict_aborts: out.lock_conflicts,
        gave_up: 0,
        ops: total_ops,
        sim_cycles: db.max_clock() - clock0,
        crash_fired: false,
        forces_requested: db.logs().total_forces_requested() - requested0,
        physical_forces: db.logs().total_forces() - physical0,
        records_forced: db.logs().total_records_forced() - records0,
        lock_stalls: out.epoch_waits,
    };
    Ok((report, out))
}
