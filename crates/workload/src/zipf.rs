//! A small Zipf(θ) sampler over `0..n` (no external distribution crate).
//!
//! Implements the classic Gray et al. self-similar Zipfian via the inverse
//! CDF of the discrete Zipf distribution, precomputed at construction.
//! θ = 0 degenerates to uniform; θ ≈ 1 gives the usual hot-spot skew
//! (a few branch-like records absorbing most of the traffic — exactly the
//! co-location stress the paper's §3 scenarios thrive on).

use rand::Rng;

/// Precomputed discrete Zipf sampler.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities, length `n`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n` with skew `theta ≥ 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty domain");
        assert!(theta >= 0.0, "negative skew");
        let mut weights = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for i in 0..n {
            let w = 1.0 / ((i + 1) as f64).powf(theta);
            total += w;
            weights.push(total);
        }
        for w in &mut weights {
            *w /= total;
        }
        Zipf { cdf: weights }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // Binary search the CDF.
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) | Err(i) => (i as u64).min(self.cdf.len() as u64 - 1),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(theta: f64) -> Vec<u64> {
        let z = Zipf::new(16, theta);
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = vec![0u64; 16];
        for _ in 0..20_000 {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn theta_zero_is_uniform() {
        let h = histogram(0.0);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(*max < min * 2, "uniform histogram too skewed: {h:?}");
    }

    #[test]
    fn high_theta_concentrates_on_low_ranks() {
        let h = histogram(1.2);
        assert!(h[0] > h[8] * 5, "rank 0 should dominate: {h:?}");
        assert!(h[0] + h[1] + h[2] > 10_000, "top-3 should absorb most traffic");
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(5, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        // The E10-elr experiment compares two engine configurations on the
        // byte-identical operation stream; that only holds if the sampler
        // is a pure function of the seed.
        let draw = |seed: u64| {
            let z = Zipf::new(64, 0.95);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..256).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(0xE10), draw(0xE10));
        assert_ne!(draw(0xE10), draw(0xE11), "different seeds should diverge");
    }

    #[test]
    fn raising_theta_never_reduces_hot_rank_mass() {
        // Sanity for the contention knob: the share of traffic on the
        // hottest rank grows monotonically with θ across the sweep range.
        let mass: Vec<u64> = [0.0, 0.5, 0.95, 1.2].iter().map(|&t| histogram(t)[0]).collect();
        assert!(mass.windows(2).all(|w| w[0] < w[1]), "rank-0 mass not monotone: {mass:?}");
    }
}
