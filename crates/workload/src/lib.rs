//! # smdb-workload — workload generators and crash schedules
//!
//! Deterministic (seeded) transaction workloads for the experiments in
//! `DESIGN.md`:
//!
//! * [`MixParams`]/[`run_mix`] — a record-update mix with controllable
//!   read fraction, inter-node **sharing rate** (the probability that an
//!   operation targets the shared region rather than the node's private
//!   partition — the knob that produces the paper's §3.2 ww/wr patterns),
//!   and optional index operations;
//! * [`Tp1Params`]/[`run_tp1`] — a TP1/debit-credit-style workload
//!   (account + teller + branch updates, history insert) in the spirit of
//!   the Sequent benchmark the paper cites (reference \[27\]);
//! * [`spawn_active`] — populate every node with in-flight transactions,
//!   the setup for the crash/abort-count experiments (E2);
//! * [`CrashPlan`] — mid-workload crash scheduling.
//!
//! All conflicts are handled with the engine's no-wait policy: a blocked
//! transaction aborts and retries with fresh timing.

mod mix;
mod mt;
mod tp1;
mod zipf;

pub use mix::{
    run_mix, run_mix_with_crash, spawn_active, spawn_active_parallel, CrashPlan, MixParams,
    MixReport,
};
pub use mt::{run_mix_mt, threads_from_env};
pub use tp1::{run_tp1, Tp1Params, Tp1Report};
pub use zipf::Zipf;
