//! TP1 / debit-credit style workload.
//!
//! The paper motivates SM database performance with the TP1 benchmark on a
//! Sequent Symmetry (§8, [27]). Our TP1 variant follows the classic
//! debit-credit shape: each transaction updates one account, one teller,
//! and one branch record, and inserts a history row (an index insert).
//! Branch records are few and touched by every node — a built-in source of
//! heavy inter-node ww sharing; accounts are plentiful and mostly local.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smdb_core::{DbError, SmDb};
use smdb_sim::NodeId;

/// TP1 sizing and behaviour.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Tp1Params {
    /// Transactions to commit.
    pub txns: usize,
    /// Number of branch records (shared by everyone; the classic scaling
    /// unit).
    pub branches: u64,
    /// Tellers per branch.
    pub tellers_per_branch: u64,
    /// Probability an account access goes to a *remote* branch's account
    /// range (cross-node traffic beyond the branch records).
    pub remote_fraction: f64,
    /// Record a history row via an index insert.
    pub with_history: bool,
    /// RNG seed.
    pub seed: u64,
    /// No-wait retry budget per transaction.
    pub retries: usize,
}

impl Default for Tp1Params {
    fn default() -> Self {
        Tp1Params {
            txns: 100,
            branches: 4,
            tellers_per_branch: 4,
            remote_fraction: 0.15,
            with_history: true,
            seed: 7,
            retries: 16,
        }
    }
}

/// Outcome of a TP1 run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Tp1Report {
    /// Committed transactions.
    pub committed: u64,
    /// No-wait conflict aborts.
    pub conflict_aborts: u64,
    /// Abandoned transactions.
    pub gave_up: u64,
    /// Simulated cycles for the whole run.
    pub sim_cycles: u64,
    /// Committed transactions per million simulated cycles.
    pub tps_per_mcycle: f64,
    /// Log-force requests made during the run: physical forces plus
    /// requests absorbed by the coalescing window.
    pub forces_requested: u64,
    /// Physical log forces performed (each paid the full force latency).
    pub physical_forces: u64,
    /// Log records made durable by those physical forces.
    pub records_forced: u64,
}

/// Slot layout: branches, then tellers, then accounts fill the rest.
struct Tp1Layout {
    branches: u64,
    tellers: u64,
    accounts: u64,
}

impl Tp1Layout {
    fn new(db: &SmDb, p: &Tp1Params) -> Self {
        let total = db.record_count() as u64;
        let branches = p.branches;
        let tellers = p.branches * p.tellers_per_branch;
        assert!(
            branches + tellers < total,
            "record heap too small for the TP1 layout ({total} slots)"
        );
        Tp1Layout { branches, tellers, accounts: total - branches - tellers }
    }

    fn branch_slot(&self, b: u64) -> u64 {
        b % self.branches
    }

    fn teller_slot(&self, b: u64, t: u64) -> u64 {
        self.branches
            + (b % self.branches) * (self.tellers / self.branches)
            + t % (self.tellers / self.branches)
    }

    fn account_slot(&self, a: u64) -> u64 {
        self.branches + self.tellers + a % self.accounts
    }
}

/// Run the TP1 workload.
pub fn run_tp1(db: &mut SmDb, params: Tp1Params) -> Tp1Report {
    let layout = Tp1Layout::new(db, &params);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let nodes = db.config().nodes as u64;
    let mut report = Tp1Report::default();
    let clock0 = db.max_clock();
    let requested0 = db.logs().total_forces_requested();
    let physical0 = db.logs().total_forces();
    let records0 = db.logs().total_records_forced();
    // History keys live in their own key space, offset by the seed so
    // repeated runs against one engine don't collide.
    let mut next_history_key = (1u64 << 32) + params.seed.wrapping_mul(1 << 20);
    for i in 0..params.txns {
        // Round-robin over nodes, routing around any that are down.
        let mut node = NodeId((i as u64 % nodes) as u16);
        if db.machine().is_crashed(node) {
            let survivors = db.machine().surviving_nodes();
            node = survivors[i % survivors.len()];
        }
        // Home branch follows the node; sometimes the account is remote.
        let home_branch = node.0 as u64 % layout.branches;
        let branch = home_branch;
        let teller = rng.gen_range(0..params.tellers_per_branch);
        let account = if rng.gen_bool(params.remote_fraction) {
            rng.gen_range(0..layout.accounts)
        } else {
            // Account in the home branch's shard of the account space.
            let shard = layout.accounts / layout.branches;
            home_branch * shard + rng.gen_range(0..shard.max(1))
        };
        let delta: i64 = rng.gen_range(-999..=999);
        let history_key = next_history_key;
        let mut attempts = 0;
        loop {
            let result = (|| -> Result<(), DbError> {
                let txn = db.begin(node)?;
                let r = (|| {
                    // Read-modify-write of the account balance.
                    let a_slot = layout.account_slot(account);
                    let cur = db.read(txn, a_slot)?;
                    let bal = i64::from_le_bytes(cur[..8].try_into().expect("8 bytes"));
                    db.update(txn, a_slot, &(bal + delta).to_le_bytes())?;
                    // Teller and branch accumulate the delta too.
                    for slot in [layout.teller_slot(branch, teller), layout.branch_slot(branch)] {
                        let cur = db.read(txn, slot)?;
                        let bal = i64::from_le_bytes(cur[..8].try_into().expect("8 bytes"));
                        db.update(txn, slot, &(bal + delta).to_le_bytes())?;
                    }
                    if params.with_history && db.config().with_index {
                        match db.insert(txn, history_key, delta.to_le_bytes()) {
                            // A retry after a conflict later in the
                            // transaction may re-insert the same history
                            // key; the row is already there.
                            Err(DbError::Btree(smdb_btree::BtreeError::DuplicateKey {
                                ..
                            })) => {}
                            other => other?,
                        }
                    }
                    Ok(())
                })();
                match r {
                    Ok(()) => db.commit(txn),
                    Err(e) => {
                        let _ = db.abort(txn);
                        Err(e)
                    }
                }
            })();
            match result {
                Ok(()) => {
                    report.committed += 1;
                    next_history_key += 1;
                    break;
                }
                Err(DbError::WouldBlock { .. }) => {
                    report.conflict_aborts += 1;
                    attempts += 1;
                    if attempts > params.retries {
                        report.gave_up += 1;
                        break;
                    }
                }
                Err(e) => panic!("tp1 transaction failed: {e}"),
            }
        }
    }
    report.sim_cycles = db.max_clock() - clock0;
    report.tps_per_mcycle =
        report.committed as f64 / (report.sim_cycles as f64 / 1_000_000.0).max(f64::EPSILON);
    report.forces_requested = db.logs().total_forces_requested() - requested0;
    report.physical_forces = db.logs().total_forces() - physical0;
    report.records_forced = db.logs().total_records_forced() - records0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_core::{DbConfig, ProtocolKind};

    #[test]
    fn tp1_commits_and_conserves_money() {
        let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
        let report = run_tp1(&mut db, Tp1Params { txns: 60, ..Default::default() });
        assert!(report.committed >= 50, "committed {}", report.committed);
        db.check_ifa(NodeId(0)).assert_ok();
        // Debit-credit conservation: sum over branches == sum over tellers
        // == sum over accounts of applied deltas. Verify branch total
        // equals account total.
        let layout = Tp1Layout::new(&db, &Tp1Params::default());
        let sum = |range: std::ops::Range<u64>, db: &SmDb| -> i64 {
            range
                .map(|s| {
                    let v = db.current_value(s).unwrap();
                    i64::from_le_bytes(v[..8].try_into().unwrap())
                })
                .sum()
        };
        let branch_total = sum(0..layout.branches, &db);
        let teller_total = sum(layout.branches..layout.branches + layout.tellers, &db);
        let account_total = sum(layout.branches + layout.tellers..db.record_count() as u64, &db);
        assert_eq!(branch_total, teller_total);
        assert_eq!(branch_total, account_total);
    }

    #[test]
    fn tp1_survives_mid_run_crash() {
        let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
        run_tp1(&mut db, Tp1Params { txns: 30, ..Default::default() });
        db.crash_and_recover(&[NodeId(2)]).unwrap();
        db.check_ifa(NodeId(0)).assert_ok();
        let report = run_tp1(&mut db, Tp1Params { txns: 30, seed: 99, ..Default::default() });
        assert!(report.committed > 0);
        db.check_ifa(NodeId(0)).assert_ok();
    }

    #[test]
    fn tp1_branch_records_are_hot() {
        let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
        let before = db.machine().stats().clone();
        run_tp1(&mut db, Tp1Params { txns: 40, ..Default::default() });
        let delta = db.machine().stats().delta_since(&before);
        assert!(
            delta.migrations + delta.invalidations > 0,
            "branch sharing must generate coherence traffic"
        );
    }
}
