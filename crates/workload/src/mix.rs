//! Record-update mix workload and crash scheduling.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smdb_core::{DbError, SmDb};
use smdb_sim::{NodeId, TxnId};

/// Parameters for the record-update mix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixParams {
    /// Transactions to run (committed ones count; conflict retries don't).
    pub txns: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Fraction of operations that are reads (the rest are updates, or
    /// index ops per `index_fraction`).
    pub read_fraction: f64,
    /// Probability that an operation targets the *shared region* (the
    /// first `shared_slots` record slots, touched by every node) rather
    /// than the executing node's private partition. This is the
    /// inter-node data-sharing knob: 0.0 produces no ww/wr coherence
    /// patterns, 1.0 maximises them.
    pub sharing: f64,
    /// Size of the shared region, slots.
    pub shared_slots: u64,
    /// Fraction of non-read operations that are index inserts/deletes
    /// (requires the engine to have an index; 0.0 disables).
    pub index_fraction: f64,
    /// Zipf skew θ for slot selection within a region (0 = uniform; ~1 =
    /// classic hot-spot skew).
    pub zipf_theta: f64,
    /// RNG seed (workloads are deterministic given the seed).
    pub seed: u64,
    /// Retries after a no-wait conflict before giving up on a
    /// transaction.
    pub retries: usize,
    /// Take a sharp checkpoint every this many transactions (0 disables).
    /// Checkpoints bound how far back restart recovery must scan and let
    /// the engine reclaim redo-free log prefixes.
    pub checkpoint_every: usize,
    /// Pipelined group commit: keep up to this many transactions in
    /// flight, round-robin one operation each, and commit them with
    /// `commit_pipelined` (commit record appended, acknowledgement
    /// deferred to the next pipeline drain). 0 runs the classic serial
    /// loop with synchronous commits. Pipelined mode expects the engine
    /// to be configured with lock *polling* (`DbConfig::with_lock_polling`):
    /// a blocked transaction retries its operation in place instead of
    /// aborting, so commit-window lock conflicts cost stall cycles, not
    /// retry storms.
    pub commit_window: usize,
    /// Drain the commit pipeline (group-force the pending commit records
    /// and acknowledge the covered transactions) after this many pipelined
    /// commits. 0 drains only when the whole window is blocked and at the
    /// end of the run. Ignored in serial mode.
    pub drain_every: usize,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            txns: 100,
            ops_per_txn: 4,
            read_fraction: 0.25,
            sharing: 0.3,
            shared_slots: 32,
            index_fraction: 0.0,
            zipf_theta: 0.0,
            seed: 42,
            retries: 8,
            checkpoint_every: 0,
            commit_window: 0,
            drain_every: 0,
        }
    }
}

impl MixParams {
    /// The high-contention skewed cell used by experiment E10-elr: a pure
    /// write mix (TP1-style fixed-length update transactions) hammering a
    /// tiny shared hot set under classic Zipf skew, run through the
    /// pipelined commit window. Under these parameters nearly every
    /// transaction collides on the hottest record slots, so the run is
    /// dominated by lock waits and commit forces — exactly the regime
    /// where controlled lock violation pays.
    pub fn contended_tp1(txns: usize) -> Self {
        MixParams {
            txns,
            ops_per_txn: 4,
            read_fraction: 0.0,
            sharing: 1.0,
            shared_slots: 4,
            index_fraction: 0.0,
            zipf_theta: 0.95,
            seed: 0xE10,
            retries: 64,
            checkpoint_every: 0,
            commit_window: 8,
            drain_every: 8,
        }
    }
}

/// Outcome of a mix run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixReport {
    /// Transactions committed.
    pub committed: u64,
    /// No-wait conflict aborts (each followed by a retry, budget
    /// permitting).
    pub conflict_aborts: u64,
    /// Transactions abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Operations executed (within committed transactions).
    pub ops: u64,
    /// Simulated machine makespan consumed by the run, cycles.
    pub sim_cycles: u64,
    /// Whether the [`CrashPlan`] actually fired. A plan whose
    /// `after_txns` is at or beyond the transaction count never triggers;
    /// callers that assumed "plan given ⇒ crash exercised" can now tell.
    pub crash_fired: bool,
    /// Log-force requests made during the run: physical forces plus
    /// requests absorbed by the coalescing window.
    pub forces_requested: u64,
    /// Physical log forces performed (each paid the full force latency).
    pub physical_forces: u64,
    /// Log records made durable by those physical forces.
    pub records_forced: u64,
    /// Pipelined mode only: operations that found their lock held by
    /// another in-flight transaction and retried in place (polling
    /// stalls). The serial driver leaves this 0 — its conflicts surface
    /// as `conflict_aborts` instead.
    pub lock_stalls: u64,
}

/// A mid-workload crash schedule: after `after_txns` committed
/// transactions, crash `nodes`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrashPlan {
    /// Commit count that triggers the crash.
    pub after_txns: usize,
    /// Nodes to crash.
    pub nodes: Vec<NodeId>,
}

/// One generated operation.
pub(crate) enum Op {
    Read(u64),
    Update(u64, [u8; 8]),
    Insert(u64, [u8; 8]),
    Delete(u64),
}

pub(crate) struct Generator {
    rng: StdRng,
    pub(crate) params: MixParams,
    pub(crate) nodes: u16,
    private_per_node: u64,
    shared_dist: Zipf,
    private_dist: Zipf,
    /// Committed index keys available for deletion.
    live_keys: Vec<u64>,
    next_key: u64,
}

impl Generator {
    pub(crate) fn new(db: &SmDb, params: MixParams) -> Self {
        let nodes = db.config().nodes;
        let total = db.record_count() as u64;
        let shared = params.shared_slots.min(total.saturating_sub(nodes as u64));
        let private_per_node = (total - shared) / nodes as u64;
        Generator {
            rng: StdRng::seed_from_u64(params.seed),
            shared_dist: Zipf::new(shared.max(1), params.zipf_theta),
            private_dist: Zipf::new(private_per_node.max(1), params.zipf_theta),
            params: MixParams { shared_slots: shared, ..params },
            nodes,
            private_per_node,
            live_keys: Vec::new(),
            next_key: 1,
        }
    }

    fn pick_slot(&mut self, node: NodeId) -> u64 {
        if self.rng.gen_bool(self.params.sharing) || self.private_per_node == 0 {
            self.shared_dist.sample(&mut self.rng)
        } else {
            let base = self.params.shared_slots + node.0 as u64 * self.private_per_node;
            base + self.private_dist.sample(&mut self.rng)
        }
    }

    pub(crate) fn gen_txn_ops(&mut self, node: NodeId, with_index: bool) -> Vec<Op> {
        let mut ops = Vec::with_capacity(self.params.ops_per_txn);
        for _ in 0..self.params.ops_per_txn {
            if self.rng.gen_bool(self.params.read_fraction) {
                ops.push(Op::Read(self.pick_slot(node)));
            } else if with_index
                && self.params.index_fraction > 0.0
                && self.rng.gen_bool(self.params.index_fraction)
            {
                // Prefer deletes of committed keys half the time, when
                // available.
                if !self.live_keys.is_empty() && self.rng.gen_bool(0.5) {
                    let i = self.rng.gen_range(0..self.live_keys.len());
                    ops.push(Op::Delete(self.live_keys[i]));
                } else {
                    let key = self.next_key;
                    self.next_key += 1;
                    ops.push(Op::Insert(key, self.rng.gen::<u64>().to_le_bytes()));
                }
            } else {
                let slot = self.pick_slot(node);
                ops.push(Op::Update(slot, self.rng.gen::<u64>().to_le_bytes()));
            }
        }
        ops
    }

    fn note_committed(&mut self, ops: &[Op]) {
        for op in ops {
            match op {
                Op::Insert(k, _) => self.live_keys.push(*k),
                Op::Delete(k) => self.live_keys.retain(|x| x != k),
                _ => {}
            }
        }
    }
}

fn apply_op(db: &mut SmDb, txn: TxnId, op: &Op) -> Result<(), DbError> {
    match op {
        Op::Read(slot) => db.read(txn, *slot).map(|_| ()),
        Op::Update(slot, v) => db.update(txn, *slot, v),
        Op::Insert(k, v) => match db.insert(txn, *k, *v) {
            // A retried transaction may find its key already present
            // from an independent earlier attempt; treat as success.
            Err(DbError::Btree(smdb_btree::BtreeError::DuplicateKey { .. })) => Ok(()),
            other => other,
        },
        Op::Delete(k) => match db.delete(txn, *k) {
            Err(DbError::Btree(smdb_btree::BtreeError::KeyNotFound { .. })) => Ok(()),
            other => other,
        },
    }
}

fn run_txn_ops(db: &mut SmDb, node: NodeId, ops: &[Op]) -> Result<TxnId, DbError> {
    let txn = db.begin(node)?;
    for op in ops {
        let r = apply_op(db, txn, op);
        if let Err(e) = r {
            // An injected crash means the acting node is dead at this
            // instant: do NOT run a voluntary abort on its behalf (a dead
            // node cannot write compensation records — recovery rolls the
            // transaction back). Everything else rolls back and surfaces.
            if e.fault_crash().is_none() {
                if let Err(e2) = db.abort(txn) {
                    // The rollback itself hit an armed crash point: that
                    // crash outranks the original error.
                    if e2.fault_crash().is_some() {
                        return Err(e2);
                    }
                }
            }
            return Err(e);
        }
    }
    db.commit(txn)?;
    Ok(txn)
}

/// Run the mix to completion (no crash plan, no fault injection).
/// Returns the report. Panics on engine errors — with no crash plan and
/// the fault injector disabled, the mix cannot fail; harnesses that arm
/// fault injection must use [`run_mix_with_crash`] and handle the error.
pub fn run_mix(db: &mut SmDb, params: MixParams) -> MixReport {
    run_mix_with_crash(db, params, None)
        .unwrap_or_else(|e| panic!("workload operation failed: {e}"))
        .0
}

/// Run the mix, optionally crashing mid-stream per `plan`. Returns the
/// report plus the recovery outcome if the plan fired (also surfaced as
/// [`MixReport::crash_fired`] — a plan with `after_txns >= txns` never
/// triggers).
///
/// Errors — a failed recovery, or a [`DbError::FaultCrash`] from an armed
/// fault injector — are returned, not panicked, with the partial progress
/// lost: the caller (typically a crash-sweep driver) owns the
/// crash-and-recover response.
pub fn run_mix_with_crash(
    db: &mut SmDb,
    params: MixParams,
    plan: Option<CrashPlan>,
) -> Result<(MixReport, Option<smdb_core::RecoveryOutcome>), DbError> {
    if params.commit_window > 0 {
        return run_pipelined(db, params, plan);
    }
    let with_index = db.config().with_index;
    let mut g = Generator::new(db, params);
    let mut report = MixReport::default();
    let clock0 = db.max_clock();
    let requested0 = db.logs().total_forces_requested();
    let physical0 = db.logs().total_forces();
    let records0 = db.logs().total_records_forced();
    let mut recovery = None;
    let nodes = g.nodes;
    for i in 0..g.params.txns {
        if let Some(p) = &plan {
            if recovery.is_none() && i == p.after_txns {
                let outcome = db.crash_and_recover(&p.nodes)?;
                recovery = Some(outcome);
                report.crash_fired = true;
            }
        }
        // Round-robin over live nodes.
        let mut node = NodeId((i % nodes as usize) as u16);
        if db.machine().is_crashed(node) {
            let survivors = db.machine().surviving_nodes();
            node = survivors[i % survivors.len()];
        }
        // Periodic sharp checkpoint, hosted by the (live) acting node.
        // Between serial transactions there are no in-flight writes of
        // this workload, so the checkpointed stable image is consistent.
        let ck = g.params.checkpoint_every;
        if ck > 0 && i > 0 && i % ck == 0 {
            db.checkpoint(node)?;
        }
        let ops = g.gen_txn_ops(node, with_index);
        let mut attempts = 0;
        loop {
            match run_txn_ops(db, node, &ops) {
                Ok(_) => {
                    g.note_committed(&ops);
                    report.committed += 1;
                    report.ops += ops.len() as u64;
                    break;
                }
                Err(DbError::WouldBlock { .. }) => {
                    report.conflict_aborts += 1;
                    attempts += 1;
                    if attempts > g.params.retries {
                        report.gave_up += 1;
                        break;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
    report.sim_cycles = db.max_clock() - clock0;
    report.forces_requested = db.logs().total_forces_requested() - requested0;
    report.physical_forces = db.logs().total_forces() - physical0;
    report.records_forced = db.logs().total_records_forced() - records0;
    Ok((report, recovery))
}

/// One transaction in the pipelined commit window.
struct InFlight {
    txn: TxnId,
    node: NodeId,
    ops: Vec<Op>,
    /// Next operation to issue (retried in place on a lock stall).
    next: usize,
    /// Deadlock-breaker aborts suffered so far.
    attempts: usize,
}

/// Order a transaction's operations by a single global key — record slots
/// first, then index keys, each ascending. Every pipelined transaction
/// acquires its locks along this order and holds them to commit, so no
/// wait-for cycle can form between window members: the blocking-and-retry
/// driver stays deadlock-free without a timeout. (Duplicates are fine —
/// re-acquisition hits the already-held fast path.) The sort is stable,
/// so a read and an update of the same slot keep their program order.
fn sort_for_pipeline(ops: &mut [Op]) {
    ops.sort_by_key(|op| match op {
        Op::Read(s) | Op::Update(s, _) => (0u8, *s),
        Op::Insert(k, _) | Op::Delete(k) => (1u8, *k),
    });
}

/// The pipelined-group-commit driver (`MixParams::commit_window > 0`).
///
/// Keeps up to `commit_window` transactions in flight and round-robins
/// one operation per transaction per round. A lock conflict (the engine
/// must be configured with `DbConfig::with_lock_polling`) leaves the
/// transaction in place to retry next round and is counted in
/// [`MixReport::lock_stalls`]. A transaction that finishes its operations
/// commits with `commit_pipelined` — commit record appended, locks
/// released early when the engine runs controlled lock violation,
/// acknowledgement deferred. The pipeline is drained (one group force
/// per home node, then dependency-ordered acknowledgement) every
/// `drain_every` commits, whenever a round makes no progress, and at the
/// end of the run.
///
/// Because stalled transactions block and retry instead of aborting, and
/// because operations are issued in a global lock order
/// ([`sort_for_pipeline`]), a conflict generates *no* log records and no
/// compensation: the logged record stream — and therefore the durability
/// volume — is identical whichever lock-release policy the engine runs.
/// The deadlock breaker below is a belt-and-braces fallback (reachable
/// only through lock orders the sorted mix never produces, e.g. S→X
/// upgrades); it does abort, which would perturb that equality.
///
/// `committed` counts commit-record *appends*. A crash between an append
/// and its covering force can still doom such a transaction (that is the
/// controlled-violation window), so under a [`CrashPlan`] the count is an
/// upper bound on durably-acknowledged commits.
fn run_pipelined(
    db: &mut SmDb,
    params: MixParams,
    plan: Option<CrashPlan>,
) -> Result<(MixReport, Option<smdb_core::RecoveryOutcome>), DbError> {
    let with_index = db.config().with_index;
    let mut g = Generator::new(db, params);
    let mut report = MixReport::default();
    let clock0 = db.max_clock();
    let requested0 = db.logs().total_forces_requested();
    let physical0 = db.logs().total_forces();
    let records0 = db.logs().total_records_forced();
    let mut recovery = None;
    let nodes = g.nodes;
    let window = g.params.commit_window;
    let mut inflight: Vec<InFlight> = Vec::new();
    let mut issued = 0usize;
    let mut commits_since_drain = 0usize;
    let mut fruitless_rounds = 0u32;

    while issued < g.params.txns || !inflight.is_empty() {
        // Fire the crash plan at the issue boundary, then reconcile the
        // window with the survivors: recovery aborted every in-flight
        // transaction homed on a crashed node (and, under early lock
        // release, any dependent doomed in cascade) — restart those from
        // scratch on a live node.
        if let Some(p) = &plan {
            if recovery.is_none() && issued >= p.after_txns && p.after_txns < g.params.txns {
                let outcome = db.crash_and_recover(&p.nodes)?;
                recovery = Some(outcome);
                report.crash_fired = true;
                let alive = db.active_txns(None);
                let survivors = db.machine().surviving_nodes();
                for (k, e) in inflight.iter_mut().enumerate() {
                    if !alive.contains(&e.txn) {
                        e.node = survivors[k % survivors.len()];
                        e.txn = db.begin(e.node)?;
                        e.next = 0;
                    }
                }
            }
        }
        // Fill the window.
        while inflight.len() < window && issued < g.params.txns {
            let mut node = NodeId((issued % nodes as usize) as u16);
            if db.machine().is_crashed(node) {
                let survivors = db.machine().surviving_nodes();
                node = survivors[issued % survivors.len()];
            }
            let ck = g.params.checkpoint_every;
            if ck > 0 && issued > 0 && issued.is_multiple_of(ck) {
                db.checkpoint(node)?;
            }
            let mut ops = g.gen_txn_ops(node, with_index);
            sort_for_pipeline(&mut ops);
            let txn = db.begin(node)?;
            inflight.push(InFlight { txn, node, ops, next: 0, attempts: 0 });
            issued += 1;
        }
        if inflight.is_empty() {
            break;
        }
        // One operation per in-flight transaction.
        let mut progressed = false;
        let mut idx = 0;
        while idx < inflight.len() {
            let e = &mut inflight[idx];
            match apply_op(db, e.txn, &e.ops[e.next]) {
                Ok(()) => {
                    progressed = true;
                    e.next += 1;
                    if e.next == e.ops.len() {
                        db.commit_pipelined(e.txn)?;
                        let done = inflight.swap_remove(idx);
                        g.note_committed(&done.ops);
                        report.committed += 1;
                        report.ops += done.ops.len() as u64;
                        commits_since_drain += 1;
                        continue; // swap_remove put a fresh entry at idx
                    }
                    idx += 1;
                }
                Err(DbError::WouldBlock { .. }) => {
                    report.lock_stalls += 1;
                    idx += 1;
                }
                Err(err) => {
                    if err.fault_crash().is_none() {
                        if let Err(e2) = db.abort(e.txn) {
                            if e2.fault_crash().is_some() {
                                return Err(e2);
                            }
                        }
                    }
                    return Err(err);
                }
            }
        }
        // Drain policy: every `drain_every` commits, or whenever nothing
        // moved (the window is stalled behind unacknowledged commits that
        // still hold locks, or behind the force itself).
        if (g.params.drain_every > 0 && commits_since_drain >= g.params.drain_every)
            || (!progressed && db.pending_commit_count() > 0)
        {
            if db.drain_commit_pipeline()? > 0 {
                progressed = true;
            }
            commits_since_drain = 0;
        }
        if progressed {
            fruitless_rounds = 0;
        } else {
            fruitless_rounds += 1;
            if fruitless_rounds >= 2 {
                // Two whole rounds without a single grant or
                // acknowledgement: a genuine wait cycle (impossible for
                // the sorted update mix, possible with upgrades). Break it
                // deterministically: abort the oldest stalled entry and
                // retry it within its budget.
                let e = &mut inflight[0];
                report.conflict_aborts += 1;
                e.attempts += 1;
                if let Err(e2) = db.abort(e.txn) {
                    if e2.fault_crash().is_some() {
                        return Err(e2);
                    }
                }
                if e.attempts > g.params.retries {
                    report.gave_up += 1;
                    inflight.swap_remove(0);
                } else {
                    if db.machine().is_crashed(e.node) {
                        e.node = db.machine().surviving_nodes()[0];
                    }
                    e.txn = db.begin(e.node)?;
                    e.next = 0;
                }
                fruitless_rounds = 0;
            }
        }
    }
    // Final drain: acknowledge everything still pending. Each pass pays
    // at most one physical force per home node; a pass that acknowledges
    // nothing means the remaining entries are unacknowledgeable (homed on
    // crashed nodes — recovery already resolved them).
    while db.pending_commit_count() > 0 {
        if db.drain_commit_pipeline()? == 0 {
            break;
        }
    }
    report.sim_cycles = db.max_clock() - clock0;
    report.forces_requested = db.logs().total_forces_requested() - requested0;
    report.physical_forces = db.logs().total_forces() - physical0;
    report.records_forced = db.logs().total_records_forced() - records0;
    Ok((report, recovery))
}

/// Start `per_node` transactions on every (live) node, each performing
/// `ops_each` updates in its private partition plus optionally one shared
/// update, and leave them **active**. The setup for the crash/abort-count
/// experiments: these are the transactions a crash puts at risk.
pub fn spawn_active(
    db: &mut SmDb,
    per_node: usize,
    ops_each: usize,
    shared_touch: bool,
    seed: u64,
) -> Vec<TxnId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = db.config().nodes;
    let total = db.record_count() as u64;
    let shared = 16u64.min(total / 4).max(1);
    let private_per_node = (total - shared) / nodes as u64;
    let mut out = Vec::new();
    // Distinct slots per transaction so no two conflict.
    for node in db.machine().surviving_nodes() {
        for k in 0..per_node {
            let txn = db.begin(node).expect("node is alive");
            let base = shared + node.0 as u64 * private_per_node;
            for j in 0..ops_each {
                let slot = base + (k * ops_each + j) as u64 % private_per_node.max(1);
                let v = rng.gen::<u64>().to_le_bytes();
                match db.update(txn, slot, &v) {
                    Ok(()) => {}
                    Err(DbError::WouldBlock { .. }) => {} // private overlap; skip op
                    Err(e) => panic!("spawn_active update failed: {e}"),
                }
            }
            if shared_touch {
                let slot = rng.gen_range(0..shared);
                let v = rng.gen::<u64>().to_le_bytes();
                // Shared slots can conflict between active transactions;
                // ignore conflicts (the point is inter-node line sharing).
                let _ = db.update(txn, slot, &v);
            }
            out.push(txn);
        }
    }
    out
}

/// Start `per_node` **parallel** transactions homed on every live node,
/// each enlisting `fan - 1` additional participant nodes (round-robin)
/// and updating one private slot per participant. Left active. §9:
/// a crash of *any* participant aborts the whole transaction, so larger
/// fan-out widens a crash's blast radius — experiment E10.
pub fn spawn_active_parallel(db: &mut SmDb, per_node: usize, fan: u16, seed: u64) -> Vec<TxnId> {
    assert!(fan >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = db.machine().surviving_nodes();
    let n = nodes.len() as u64;
    let total = db.record_count() as u64;
    let per_node_slots = total / n.max(1);
    let mut out = Vec::new();
    for (hi, &home) in nodes.iter().enumerate() {
        for k in 0..per_node {
            let txn = db.begin(home).expect("node is alive");
            let mut participants = vec![home];
            for f in 1..fan {
                let p = nodes[(hi + f as usize) % nodes.len()];
                if p != home {
                    db.attach(txn, p).expect("attach");
                    participants.push(p);
                }
            }
            for (j, &p) in participants.iter().enumerate() {
                // Distinct per-(txn, participant) slots: no conflicts.
                let slot = p.0 as u64 * per_node_slots
                    + ((k * fan as usize + j) as u64) % per_node_slots.max(1);
                let v = rng.gen::<u64>().to_le_bytes();
                match db.update_on(txn, p, slot, &v) {
                    Ok(()) | Err(DbError::WouldBlock { .. }) => {}
                    Err(e) => panic!("parallel spawn update failed: {e}"),
                }
            }
            out.push(txn);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_core::{DbConfig, ProtocolKind};

    fn small_db(p: ProtocolKind) -> SmDb {
        SmDb::new(DbConfig::small(4, p))
    }

    #[test]
    fn mix_runs_and_commits() {
        let mut db = small_db(ProtocolKind::VolatileSelectiveRedo);
        let report = run_mix(&mut db, MixParams { txns: 50, ..Default::default() });
        assert_eq!(report.committed + report.gave_up, 50);
        assert!(report.committed > 40, "most transactions should commit");
        assert!(report.sim_cycles > 0);
        db.check_ifa(NodeId(0)).assert_ok();
    }

    #[test]
    fn mix_is_deterministic_given_seed() {
        let run = |seed| {
            let mut db = small_db(ProtocolKind::VolatileRedoAll);
            let r = run_mix(&mut db, MixParams { txns: 40, seed, ..Default::default() });
            (r.committed, r.conflict_aborts, r.ops, db.max_clock())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ somewhere");
    }

    #[test]
    fn mix_with_index_ops() {
        let mut db = small_db(ProtocolKind::VolatileSelectiveRedo);
        let report = run_mix(
            &mut db,
            MixParams { txns: 60, index_fraction: 0.5, read_fraction: 0.0, ..Default::default() },
        );
        assert!(report.committed > 0);
        let live = db.index_scan(NodeId(0)).unwrap();
        assert!(!live.is_empty(), "inserts should have landed");
        db.check_ifa(NodeId(0)).assert_ok();
    }

    #[test]
    fn mid_run_crash_preserves_ifa_and_run_continues() {
        for p in ProtocolKind::ifa_protocols() {
            let mut db = small_db(p);
            let plan = CrashPlan { after_txns: 20, nodes: vec![NodeId(3)] };
            let (report, recovery) = run_mix_with_crash(
                &mut db,
                MixParams { txns: 60, sharing: 0.6, ..Default::default() },
                Some(plan),
            )
            .expect("recovery succeeds");
            let outcome = recovery.expect("crash fired");
            assert!(report.crash_fired);
            assert_eq!(outcome.crashed, vec![NodeId(3)]);
            assert!(report.committed > 40, "{p:?}: survivors kept working");
            db.check_ifa(NodeId(0)).assert_ok();
        }
    }

    #[test]
    fn crash_plan_beyond_txn_count_is_surfaced_not_silent() {
        let mut db = small_db(ProtocolKind::VolatileSelectiveRedo);
        // after_txns == txns: the plan can never trigger. Previously this
        // was indistinguishable from a run whose crash fired.
        let plan = CrashPlan { after_txns: 10, nodes: vec![NodeId(1)] };
        let (report, recovery) =
            run_mix_with_crash(&mut db, MixParams { txns: 10, ..Default::default() }, Some(plan))
                .expect("mix runs");
        assert!(!report.crash_fired, "plan at txns boundary must not fire");
        assert!(recovery.is_none());
        assert!(!db.machine().is_crashed(NodeId(1)));
    }

    #[test]
    fn spawn_active_leaves_txns_in_flight() {
        let mut db = small_db(ProtocolKind::VolatileSelectiveRedo);
        let txns = spawn_active(&mut db, 3, 2, true, 9);
        assert_eq!(txns.len(), 12);
        assert_eq!(db.active_txns(None).len(), 12);
        // Crash one node: exactly its transactions abort.
        let outcome = db.crash_and_recover(&[NodeId(1)]).unwrap();
        assert_eq!(outcome.aborted.len(), 3);
        db.check_ifa(NodeId(0)).assert_ok();
    }

    #[test]
    fn parallel_spawn_and_crash_blast_radius() {
        let mut db = small_db(ProtocolKind::VolatileSelectiveRedo);
        let txns = spawn_active_parallel(&mut db, 2, 2, 77);
        assert_eq!(txns.len(), 8);
        // fan=2 on 4 nodes: a crash of one node dooms its 2 homed txns
        // plus the 2 txns homed on the previous node (which enlisted it).
        let outcome = db.crash_and_recover(&[NodeId(1)]).unwrap();
        assert_eq!(outcome.aborted.len(), 4);
        db.check_ifa(NodeId(0)).assert_ok();
    }

    #[test]
    fn periodic_checkpoints_truncate_logs_and_preserve_recovery() {
        let mut db = small_db(ProtocolKind::VolatileSelectiveRedo);
        let r = run_mix(
            &mut db,
            MixParams { txns: 60, checkpoint_every: 10, sharing: 0.6, ..Default::default() },
        );
        assert!(r.committed > 40);
        assert!(db.checkpoint_store().checkpoints_taken >= 5, "checkpoints fired periodically");
        let truncated: u64 = (0..4).map(|n| db.logs().log(NodeId(n)).truncation_point().0).sum();
        assert!(truncated > 0, "redo-free prefixes were reclaimed");
        // A crash after checkpointing still recovers to an IFA-consistent
        // state, scanning only past the checkpoint bound.
        let outcome = db.crash_and_recover(&[NodeId(2)]).unwrap();
        assert!(outcome.ckpt_bound_lsn > 0);
        db.check_ifa(NodeId(0)).assert_ok();
    }

    fn pipelined_db(p: ProtocolKind, elr: bool) -> SmDb {
        let cfg = DbConfig::small(4, p).with_coalesced_forces().with_lock_polling();
        SmDb::new(if elr { cfg.with_early_lock_release() } else { cfg })
    }

    #[test]
    fn pipelined_mix_commits_everything_and_stalls_instead_of_aborting() {
        let mut db = pipelined_db(ProtocolKind::StableEager, true);
        let report = run_mix(&mut db, MixParams::contended_tp1(40));
        assert_eq!(report.committed, 40, "sorted lock order: nobody deadlocks or gives up");
        assert_eq!(report.conflict_aborts, 0, "stalls retry in place, never abort");
        assert!(report.lock_stalls > 0, "the hot set must actually contend");
        assert_eq!(db.pending_commit_count(), 0, "final drain acknowledged everyone");
        assert!(db.active_txns(None).is_empty());
        db.check_ifa(NodeId(0)).assert_ok();
    }

    #[test]
    fn pipelined_mix_is_deterministic_given_seed() {
        let run = |elr| {
            let mut db = pipelined_db(ProtocolKind::StableTriggered, elr);
            let r = run_mix(&mut db, MixParams::contended_tp1(30));
            (r.committed, r.lock_stalls, r.ops, db.max_clock())
        };
        assert_eq!(run(true), run(true));
        assert_eq!(run(false), run(false));
    }

    #[test]
    fn pipelined_durability_volume_is_lock_policy_independent() {
        // The record stream a pipelined run appends — and therefore, after
        // a closing checkpoint forces every log to its tip, the records
        // made durable — must not depend on whether the engine released
        // locks early. This is the invariant the E10-elr gate relies on.
        let volume = |elr| {
            let mut db = pipelined_db(ProtocolKind::StableEager, elr);
            let before = db.logs().total_records_forced();
            run_mix(&mut db, MixParams::contended_tp1(30));
            db.checkpoint(NodeId(0)).unwrap();
            db.logs().total_records_forced() - before
        };
        assert_eq!(volume(false), volume(true));
    }

    #[test]
    fn pipelined_mid_run_crash_recovers_and_run_continues() {
        for elr in [false, true] {
            let mut db = pipelined_db(ProtocolKind::VolatileSelectiveRedo, elr);
            let plan = CrashPlan { after_txns: 16, nodes: vec![NodeId(2)] };
            let params = MixParams { txns: 48, ..MixParams::contended_tp1(48) };
            let (report, recovery) =
                run_mix_with_crash(&mut db, params, Some(plan)).expect("recovery succeeds");
            assert!(report.crash_fired, "elr={elr}");
            assert_eq!(recovery.expect("crash fired").crashed, vec![NodeId(2)]);
            assert!(report.committed > 30, "elr={elr}: survivors kept working");
            assert_eq!(db.pending_commit_count(), 0);
            db.check_ifa(NodeId(0)).assert_ok();
        }
    }

    #[test]
    fn zero_sharing_produces_no_migrations_between_nodes() {
        let mut db = small_db(ProtocolKind::VolatileSelectiveRedo);
        let r = run_mix(
            &mut db,
            MixParams { txns: 40, sharing: 0.0, read_fraction: 0.0, ..Default::default() },
        );
        assert!(r.committed > 0);
        assert_eq!(r.conflict_aborts, 0, "private partitions cannot conflict");
    }
}
