//! The injector: crash points, plans, and the shared handle.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// The crash that a fired fault point demands: the acting node must be
/// treated as having failed *at this instant*, with whatever partial state
/// the instrumented layer left behind (a half-forced log, a torn page, a
/// half-finished recovery). Layers wrap this in their own error enums and
/// propagate it up to the driver, which performs the actual
/// `SmDb::crash(&[victim])`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultCrash {
    /// The site that fired.
    pub site: &'static str,
    /// The visit ordinal at which it fired (0-based: the (hit+1)-th visit).
    pub hit: u64,
    /// The acting node — the crash victim. Raw id, so this crate stays
    /// dependency-free; layers convert to their `NodeId`.
    pub node: u16,
}

impl fmt::Display for FaultCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@n{}", self.site, self.hit, self.node)
    }
}

/// One crash point: a site name plus a 0-based visit ordinal. `site#hit`
/// in `Display` form — together with the scenario seed this is the full
/// one-line repro of a failing schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrashPoint {
    /// Site name as passed to [`FaultInjector::hit`].
    pub site: &'static str,
    /// Fire on the (hit+1)-th visit to the site.
    pub hit: u64,
}

impl CrashPoint {
    /// Construct a crash point.
    pub fn new(site: &'static str, hit: u64) -> Self {
        CrashPoint { site, hit }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.site, self.hit)
    }
}

/// A plan: crash points fired in sequence. One point models a single
/// failure; two points model a nested failure (the second ordinal counts
/// visits *after* the first fire — i.e. during recovery). Counters reset
/// at every fire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The points, in fire order.
    pub points: Vec<CrashPoint>,
}

impl FaultPlan {
    /// A single-failure plan.
    pub fn single(point: CrashPoint) -> Self {
        FaultPlan { points: vec![point] }
    }

    /// A nested-failure plan: `second` counts visits after `first` fires.
    pub fn nested(first: CrashPoint, second: CrashPoint) -> Self {
        FaultPlan { points: vec![first, second] }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Injector operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Visits cost one relaxed load + branch and never fire (default).
    Disabled,
    /// Visits are recorded (site + acting node) for enumeration.
    Counting,
    /// A plan is armed; visits count toward the next point's ordinal.
    Armed,
}

const MODE_DISABLED: u8 = 0;
const MODE_COUNTING: u8 = 1;
const MODE_ARMED: u8 = 2;

/// The recorded visits to one site during a counting run: element `k` is
/// the acting node of the (k+1)-th visit, so `(site, k)` for
/// `k < nodes.len()` enumerates the site's crash points.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteVisits {
    /// Site name.
    pub site: &'static str,
    /// Acting node per visit, in visit order.
    pub nodes: Vec<u16>,
}

#[derive(Default)]
struct State {
    /// Counting mode: acting node per visit, per site.
    visits: BTreeMap<&'static str, Vec<u16>>,
    /// Armed mode: the plan and the index of the next point to fire.
    plan: Vec<CrashPoint>,
    next: usize,
    /// Armed mode: per-site visit counters since the last fire.
    counters: BTreeMap<&'static str, u64>,
    /// Every fire so far, in order.
    fired: Vec<FaultCrash>,
    /// After the last plan point fires, switch to counting instead of
    /// disabling (used to enumerate recovery-time points).
    count_after: bool,
    /// Mode saved by [`FaultInjector::pause`], restored by
    /// [`FaultInjector::resume`].
    paused_mode: Option<u8>,
}

#[derive(Default)]
struct Inner {
    mode: AtomicU8,
    state: Mutex<State>,
}

/// Shared fault-injection handle. Clones observe the same state; a
/// default-constructed injector is permanently disabled until armed.
/// `Arc`-based so instrumented layers can be driven from scoped threads.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Arc<Inner>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector").field("mode", &self.mode()).finish()
    }
}

impl FaultInjector {
    /// A disabled injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        match self.inner.mode.load(Ordering::Relaxed) {
            MODE_COUNTING => Mode::Counting,
            MODE_ARMED => Mode::Armed,
            _ => Mode::Disabled,
        }
    }

    /// Disable the injector (visits become free; nothing fires).
    pub fn off(&self) {
        self.inner.mode.store(MODE_DISABLED, Ordering::Relaxed);
    }

    /// Start a counting run: clear recorded visits and record every
    /// subsequent visit without firing.
    pub fn start_counting(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.visits.clear();
        self.inner.mode.store(MODE_COUNTING, Ordering::Relaxed);
    }

    /// Stop counting and drain the recorded visits, sorted by site name.
    pub fn take_visits(&self) -> Vec<SiteVisits> {
        let mut st = self.inner.state.lock().unwrap();
        self.inner.mode.store(MODE_DISABLED, Ordering::Relaxed);
        std::mem::take(&mut st.visits)
            .into_iter()
            .map(|(site, nodes)| SiteVisits { site, nodes })
            .collect()
    }

    /// Arm a plan. Counters and the fire record are cleared; after the last
    /// point fires the injector disarms itself.
    pub fn arm(&self, plan: FaultPlan) {
        self.arm_inner(plan, false);
    }

    /// Arm a plan, switching to counting mode after the last point fires.
    /// The sweep uses this to enumerate the crash points *inside recovery*:
    /// arm the primary point, run, and the visits recorded after the fire
    /// are exactly the recovery-time sites.
    pub fn arm_then_count(&self, plan: FaultPlan) {
        self.arm_inner(plan, true);
    }

    fn arm_inner(&self, plan: FaultPlan, count_after: bool) {
        let mut st = self.inner.state.lock().unwrap();
        st.plan = plan.points;
        st.next = 0;
        st.counters.clear();
        st.visits.clear();
        st.fired.clear();
        st.count_after = count_after;
        st.paused_mode = None;
        let mode = if st.plan.is_empty() {
            if count_after {
                MODE_COUNTING
            } else {
                MODE_DISABLED
            }
        } else {
            MODE_ARMED
        };
        self.inner.mode.store(mode, Ordering::Relaxed);
    }

    /// Suspend the injector without disturbing armed counters or recorded
    /// visits. Oracle scans run *between* schedule steps and walk the same
    /// instrumented paths as the workload; pausing keeps those read-only
    /// sweeps from advancing visit ordinals (which would make a replayed
    /// plan fire at a different instant). No-op if already paused.
    pub fn pause(&self) {
        let mut st = self.inner.state.lock().unwrap();
        if st.paused_mode.is_none() {
            st.paused_mode = Some(self.inner.mode.swap(MODE_DISABLED, Ordering::Relaxed));
        }
    }

    /// Restore the mode saved by [`FaultInjector::pause`]. No-op if not
    /// paused. If the injector was re-armed while paused, the newer mode
    /// wins and the saved one is dropped.
    pub fn resume(&self) {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(saved) = st.paused_mode.take() {
            if self.inner.mode.load(Ordering::Relaxed) == MODE_DISABLED {
                self.inner.mode.store(saved, Ordering::Relaxed);
            }
        }
    }

    /// Every fire so far, in order (the victims of the current plan).
    pub fn fired(&self) -> Vec<FaultCrash> {
        self.inner.state.lock().unwrap().fired.clone()
    }

    /// Whether an armed plan still has points left to fire.
    pub fn pending(&self) -> bool {
        self.mode() == Mode::Armed
    }

    /// Visit a crash-point site on behalf of `node`. Returns
    /// `Some(FaultCrash)` exactly when an armed point fires — the caller
    /// must then abandon the operation mid-flight and propagate the crash.
    /// When the injector is disabled this is one relaxed load and a branch.
    #[inline]
    pub fn hit(&self, site: &'static str, node: u16) -> Option<FaultCrash> {
        if self.inner.mode.load(Ordering::Relaxed) == MODE_DISABLED {
            return None;
        }
        self.hit_slow(site, node)
    }

    #[cold]
    fn hit_slow(&self, site: &'static str, node: u16) -> Option<FaultCrash> {
        let mut st = self.inner.state.lock().unwrap();
        match self.inner.mode.load(Ordering::Relaxed) {
            MODE_COUNTING => {
                st.visits.entry(site).or_default().push(node);
                None
            }
            MODE_ARMED => {
                let count = st.counters.entry(site).or_insert(0);
                let ordinal = *count;
                *count += 1;
                let target = st.plan[st.next];
                if target.site == site && target.hit == ordinal {
                    let crash = FaultCrash { site, hit: ordinal, node };
                    st.fired.push(crash);
                    st.next += 1;
                    st.counters.clear();
                    if st.next >= st.plan.len() {
                        let after = if st.count_after { MODE_COUNTING } else { MODE_DISABLED };
                        self.inner.mode.store(after, Ordering::Relaxed);
                    }
                    Some(crash)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let f = FaultInjector::new();
        for _ in 0..100 {
            assert!(f.hit("a", 0).is_none());
        }
    }

    #[test]
    fn counting_records_visits_per_site() {
        let f = FaultInjector::new();
        f.start_counting();
        f.hit("a", 0);
        f.hit("b", 1);
        f.hit("a", 2);
        let v = f.take_visits();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].site, "a");
        assert_eq!(v[0].nodes, vec![0, 2]);
        assert_eq!(v[1].nodes, vec![1]);
        assert_eq!(f.mode(), Mode::Disabled);
    }

    #[test]
    fn armed_point_fires_at_exact_ordinal() {
        let f = FaultInjector::new();
        f.arm(FaultPlan::single(CrashPoint::new("a", 2)));
        assert!(f.hit("a", 5).is_none()); // visit 0
        assert!(f.hit("b", 5).is_none()); // other site doesn't count
        assert!(f.hit("a", 5).is_none()); // visit 1
        let crash = f.hit("a", 7).expect("fires on visit 2");
        assert_eq!(crash, FaultCrash { site: "a", hit: 2, node: 7 });
        assert_eq!(f.mode(), Mode::Disabled, "single plan self-disarms");
        assert!(f.hit("a", 5).is_none());
        assert_eq!(f.fired(), vec![crash]);
    }

    #[test]
    fn nested_plan_counts_from_fire() {
        let f = FaultInjector::new();
        f.arm(FaultPlan::nested(CrashPoint::new("a", 1), CrashPoint::new("a", 0)));
        assert!(f.hit("a", 0).is_none());
        assert!(f.hit("a", 0).is_some(), "primary fires");
        // Counters reset: the very next visit to "a" is ordinal 0 again.
        let second = f.hit("a", 3).expect("nested point fires");
        assert_eq!(second.hit, 0);
        assert_eq!(second.node, 3);
        assert_eq!(f.fired().len(), 2);
        assert_eq!(f.mode(), Mode::Disabled);
    }

    #[test]
    fn arm_then_count_enumerates_post_fire_visits() {
        let f = FaultInjector::new();
        f.arm_then_count(FaultPlan::single(CrashPoint::new("a", 0)));
        assert!(f.hit("a", 1).is_some());
        assert_eq!(f.mode(), Mode::Counting);
        f.hit("rec", 2);
        f.hit("rec", 2);
        let v = f.take_visits();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].site, "rec");
        assert_eq!(v[0].nodes.len(), 2);
    }

    #[test]
    fn display_forms_are_one_line_repros() {
        let p = FaultPlan::nested(
            CrashPoint::new("wal.force.record", 3),
            CrashPoint::new("recovery.phase", 1),
        );
        assert_eq!(p.to_string(), "wal.force.record#3+recovery.phase#1");
        let c = FaultCrash { site: "sim.migrate", hit: 9, node: 2 };
        assert_eq!(c.to_string(), "sim.migrate#9@n2");
    }

    #[test]
    fn pause_preserves_armed_counters() {
        let f = FaultInjector::new();
        f.arm(FaultPlan::single(CrashPoint::new("a", 1)));
        assert!(f.hit("a", 0).is_none()); // visit 0
        f.pause();
        assert_eq!(f.mode(), Mode::Disabled);
        // Visits while paused neither fire nor advance the ordinal.
        for _ in 0..10 {
            assert!(f.hit("a", 0).is_none());
        }
        f.resume();
        assert_eq!(f.mode(), Mode::Armed);
        assert!(f.hit("a", 0).is_some(), "fires on true visit 1");
    }

    #[test]
    fn pause_is_idempotent_and_rearm_wins() {
        let f = FaultInjector::new();
        f.start_counting();
        f.pause();
        f.pause();
        f.resume();
        assert_eq!(f.mode(), Mode::Counting);
        f.pause();
        f.arm(FaultPlan::single(CrashPoint::new("a", 0)));
        f.resume(); // must not clobber the newly armed plan
        assert_eq!(f.mode(), Mode::Armed);
    }

    #[test]
    fn clones_share_state() {
        let f = FaultInjector::new();
        let g = f.clone();
        f.arm(FaultPlan::single(CrashPoint::new("a", 0)));
        assert!(g.hit("a", 4).is_some());
        assert_eq!(f.fired().len(), 1);
    }
}
