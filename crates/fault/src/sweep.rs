//! The crash-point sweep driver.
//!
//! A sweep validates one *scenario* (a seeded workload + oracle check,
//! provided by the caller as a closure) against every crash point it
//! exposes:
//!
//! 1. **Enumerate** — dry-run the scenario with a counting injector; the
//!    recorded visits are the scenario's crash points.
//! 2. **Single failures** — replay once per (stride-sampled) point with a
//!    one-point [`FaultPlan`] armed; the scenario drives crash + recovery
//!    when the point fires and checks its oracles afterwards.
//! 3. **Nested failures** — for selected primary points, re-run with
//!    [`FaultInjector::arm_then_count`] to enumerate the crash points
//!    *inside recovery*, then replay once per sampled (primary, secondary)
//!    pair with a two-point plan: a second node dies while the first
//!    crash's recovery is in flight.
//!
//! The driver lives below `smdb-core` in the dependency graph, so it knows
//! nothing about databases: the scenario closure owns construction,
//! workload, crash driving, and oracle checking. Every failure is reported
//! as a one-line repro: scenario label, seed, and the `site#hit` plan.

use crate::injector::{CrashPoint, FaultPlan, SiteVisits};

/// What a sweep run asks the scenario to do.
#[derive(Clone, Debug)]
pub enum RunMode {
    /// Dry-run with a counting injector; return the recorded visits.
    Count,
    /// Replay with `plan` armed, drive crash/recovery when points fire,
    /// then check oracles.
    Replay(FaultPlan),
    /// Replay with `plan` armed and counting enabled after the last fire;
    /// return the visits recorded during recovery.
    CountDuringRecovery(FaultPlan),
}

/// What a scenario run reports back.
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// Recorded visits (populated for the counting modes).
    pub visits: Vec<SiteVisits>,
    /// Whether every armed point actually fired during the run.
    pub all_fired: bool,
}

/// Sweep parameters for one scenario.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Scenario label for repro lines (e.g. the protocol name).
    pub label: String,
    /// Scenario seed, echoed into repro lines.
    pub seed: u64,
    /// Cap on single-failure replays (points are stride-sampled to fit).
    pub max_single: usize,
    /// Cap on nested-failure replays across all primaries.
    pub max_nested: usize,
    /// How many primary points get nested (crash-during-recovery)
    /// exploration.
    pub nested_primaries: usize,
    /// Full scenario context for repro lines: a compact encoding of the
    /// engine configuration and workload shape (the same `cfg=` syntax the
    /// vopr fuzzer uses), so a printed `FAIL` line carries everything a
    /// replay needs — not just label/seed/plan. Empty prints as `-`.
    pub context: String,
}

/// Aggregated result of one scenario's sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Scenario label.
    pub label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Crash points the enumeration pass discovered.
    pub points_enumerated: usize,
    /// Single-failure replays executed.
    pub single_runs: usize,
    /// Nested-failure replays executed.
    pub nested_runs: usize,
    /// Replays whose armed plan never fired (point unreachable on the
    /// perturbed path — counted, not failed).
    pub unfired: usize,
    /// One-line repros of every failing schedule.
    pub failures: Vec<String>,
}

impl SweepReport {
    /// Whether every executed schedule passed its oracles.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Stride-sample up to `max` elements from `items`, keeping first/last
/// coverage deterministic.
fn stride_sample<T: Clone>(items: &[T], max: usize) -> Vec<T> {
    if max == 0 || items.is_empty() {
        return Vec::new();
    }
    if items.len() <= max {
        return items.to_vec();
    }
    let stride = items.len() as f64 / max as f64;
    (0..max).map(|i| items[(i as f64 * stride) as usize].clone()).collect()
}

fn flatten_points(visits: &[SiteVisits]) -> Vec<CrashPoint> {
    let mut pts = Vec::new();
    for sv in visits {
        for k in 0..sv.nodes.len() as u64 {
            pts.push(CrashPoint::new(sv.site, k));
        }
    }
    pts
}

/// Run the full sweep for one scenario. `run` executes the scenario in the
/// given mode and returns `Err(description)` when an oracle fails; the
/// description is wrapped into a one-line repro (label, seed, plan).
pub fn sweep<F>(cfg: &SweepConfig, mut run: F) -> SweepReport
where
    F: FnMut(&RunMode) -> Result<RunOutput, String>,
{
    let mut report =
        SweepReport { label: cfg.label.clone(), seed: cfg.seed, ..SweepReport::default() };

    // Phase 1: enumerate crash points with a clean counting run.
    let visits = match run(&RunMode::Count) {
        Ok(out) => out.visits,
        Err(e) => {
            report.failures.push(repro(cfg, "count", &e));
            return report;
        }
    };
    let all_points = flatten_points(&visits);
    report.points_enumerated = all_points.len();

    // Phase 2: single failures.
    let singles = stride_sample(&all_points, cfg.max_single);
    for &point in &singles {
        let plan = FaultPlan::single(point);
        let mode = RunMode::Replay(plan.clone());
        report.single_runs += 1;
        match run(&mode) {
            Ok(out) => {
                if !out.all_fired {
                    report.unfired += 1;
                }
            }
            Err(e) => report.failures.push(repro(cfg, &plan.to_string(), &e)),
        }
    }

    // Phase 3: nested failures — crash a second node during recovery.
    let primaries = stride_sample(&singles, cfg.nested_primaries.min(singles.len()));
    if primaries.is_empty() || cfg.max_nested == 0 {
        return report;
    }
    let per_primary = cfg.max_nested.div_ceil(primaries.len());
    for &primary in &primaries {
        if report.nested_runs >= cfg.max_nested {
            break;
        }
        // Enumerate the recovery-time points exposed by this primary.
        let mode = RunMode::CountDuringRecovery(FaultPlan::single(primary));
        let rec_visits = match run(&mode) {
            Ok(out) => {
                if !out.all_fired {
                    report.unfired += 1;
                    continue;
                }
                out.visits
            }
            Err(e) => {
                report.failures.push(repro(cfg, &format!("{primary}+count"), &e));
                continue;
            }
        };
        let rec_points = flatten_points(&rec_visits);
        let secondaries =
            stride_sample(&rec_points, per_primary.min(cfg.max_nested - report.nested_runs));
        for &secondary in &secondaries {
            let plan = FaultPlan::nested(primary, secondary);
            report.nested_runs += 1;
            match run(&RunMode::Replay(plan.clone())) {
                Ok(out) => {
                    if !out.all_fired {
                        report.unfired += 1;
                    }
                }
                Err(e) => report.failures.push(repro(cfg, &plan.to_string(), &e)),
            }
        }
    }

    report
}

fn repro(cfg: &SweepConfig, plan: &str, msg: &str) -> String {
    let context = if cfg.context.is_empty() { "-" } else { &cfg.context };
    format!(
        "FAIL scenario={} seed={} plan={} cfg={} :: {}",
        cfg.label, cfg.seed, plan, context, msg
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::{FaultInjector, Mode};

    /// A fake scenario: visits "op" 10 times on node 0; when a plan is
    /// armed the fire is "handled" and the scenario keeps going, visiting
    /// "rec" 3 times (its pretend recovery).
    fn fake_run(mode: &RunMode) -> Result<RunOutput, String> {
        let f = FaultInjector::new();
        match mode {
            RunMode::Count => f.start_counting(),
            RunMode::Replay(plan) => f.arm(plan.clone()),
            RunMode::CountDuringRecovery(plan) => f.arm_then_count(plan.clone()),
        }
        let mut crashed = false;
        for _ in 0..10 {
            if f.hit("op", 0).is_some() {
                crashed = true;
                for _ in 0..3 {
                    if f.hit("rec", 1).is_some() {
                        // nested fire: re-run "recovery" from node 2
                        for _ in 0..3 {
                            f.hit("rec", 2);
                        }
                        break;
                    }
                }
                break;
            }
        }
        let _ = crashed;
        let expected = match mode {
            RunMode::Count => 0,
            RunMode::Replay(p) | RunMode::CountDuringRecovery(p) => p.points.len(),
        };
        Ok(RunOutput {
            visits: if matches!(f.mode(), Mode::Counting) { f.take_visits() } else { Vec::new() },
            all_fired: f.fired().len() == expected,
        })
    }

    #[test]
    fn sweep_enumerates_and_replays() {
        let cfg = SweepConfig {
            label: "fake".into(),
            seed: 42,
            max_single: 5,
            max_nested: 4,
            nested_primaries: 2,
            context: String::new(),
        };
        let report = sweep(&cfg, fake_run);
        assert_eq!(report.points_enumerated, 10);
        assert_eq!(report.single_runs, 5);
        assert!(report.nested_runs > 0 && report.nested_runs <= 4);
        assert!(report.passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn failures_become_one_line_repros() {
        let cfg = SweepConfig {
            label: "fake".into(),
            seed: 7,
            max_single: 2,
            max_nested: 0,
            nested_primaries: 0,
            context: "p:SE,n:4".into(),
        };
        let report = sweep(&cfg, |mode| match mode {
            RunMode::Count => fake_run(mode),
            _ => Err("oracle mismatch".into()),
        });
        assert_eq!(report.failures.len(), 2);
        assert!(report.failures[0].starts_with("FAIL scenario=fake seed=7 plan=op#"));
        assert!(report.failures[0].contains(" cfg=p:SE,n:4 "));
        assert!(report.failures[0].ends_with(":: oracle mismatch"));
    }

    #[test]
    fn stride_sampling_keeps_bounds() {
        let items: Vec<u32> = (0..100).collect();
        let s = stride_sample(&items, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        let all = stride_sample(&items, 1000);
        assert_eq!(all.len(), 100);
    }
}
