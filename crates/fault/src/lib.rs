//! # smdb-fault — deterministic crash-point fault injection
//!
//! The paper's claim is *Isolated Failure Atomicity under independent node
//! failures*: a node may die at any instant — halfway through a log force,
//! in the middle of a line migration, between two phases of another node's
//! restart. Validating that claim needs a way to crash the simulated
//! machine at exactly those instants, repeatably.
//!
//! This crate provides the machinery, with zero dependencies so every layer
//! (sim, wal, storage, btree, lock, core) can thread it through:
//!
//! * A **crash point** is a named site in the code (`"wal.force.record"`,
//!   `"sim.migrate"`, `"recovery.phase"`, ...) plus a *visit ordinal*: the
//!   k-th time execution reaches that site during a scenario. Sites are
//!   visited via [`FaultInjector::hit`], which the instrumented layers call
//!   with the **acting node** — the node that would be mid-operation, and
//!   therefore the crash victim, if the point fires.
//! * A [`FaultInjector`] is a cheaply clonable handle shared by every layer
//!   of one database instance. When disabled (the default) a visit costs
//!   one relaxed atomic load and a branch — the same discipline as the obs
//!   crate, so production paths stay hot.
//! * **Counting mode** dry-runs a scenario and records every visit (site +
//!   acting node), enumerating the scenario's crash points without
//!   perturbing it.
//! * **Armed mode** carries a [`FaultPlan`]: a sequence of [`CrashPoint`]s.
//!   When the visit counter of the first point's site reaches its ordinal,
//!   the injector *fires*: [`FaultInjector::hit`] returns a [`FaultCrash`]
//!   which the instrumented layer converts into its own error type and
//!   propagates. The driver catches it, crashes the victim node, and runs
//!   recovery. Counters reset on fire and the plan advances to its next
//!   point, so a two-point plan models a **nested failure**: the second
//!   point's ordinal counts visits *during recovery from the first crash*.
//!   After the last point fires the injector disarms itself (or switches to
//!   counting, see [`FaultInjector::arm_then_count`], which is how the
//!   sweep enumerates recovery-time crash points).
//!
//! Determinism: scenarios are seeded, and the injector only perturbs a run
//! *at* the fire point, so a counting run and a replay agree visit-for-visit
//! up to the crash. Every failing schedule is reproducible from one line:
//! the seed plus the `site#ordinal` ids (see [`CrashPoint`]'s `Display`).

mod injector;
mod schedule;
pub mod sweep;

pub use injector::{CrashPoint, FaultCrash, FaultInjector, FaultPlan, Mode, SiteVisits};
pub use schedule::{SchedMode, Scheduler};
