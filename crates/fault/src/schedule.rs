//! The deterministic schedule tape: a shared handle that turns every
//! nondeterministic-looking *ordering choice* in the stack into an explicit,
//! recordable, replayable decision.
//!
//! The engine and its drivers consult [`Scheduler::choose`] wherever more
//! than one order is admissible — which in-flight transaction steps next,
//! which node's log is force-drained first, which ready commit is
//! acknowledged next, which survivor hosts recovery. Each call names its
//! *site* and the number of admissible alternatives `n`, and gets back an
//! index `< n`:
//!
//! * **Disabled** (default): the choice is always `0` — the engine's
//!   historical deterministic order (oldest first, lowest node id first).
//!   Cost: one relaxed atomic load and a branch, the same discipline as
//!   [`crate::FaultInjector`].
//! * **Recording**: the choice is drawn from a SplitMix64 stream seeded by
//!   one `u64`, reduced modulo `n`, appended to the **tape**, and returned.
//!   After the run the tape *is* the schedule: a flat `Vec<u32>` of the
//!   reduced choices, in decision order.
//! * **Replaying**: choices are consumed from a supplied tape; each entry is
//!   re-reduced modulo the live `n`, so a tape remains applicable even when
//!   a shrink changed how many alternatives a later decision sees. A replay
//!   that runs past the end of the tape pads with `0` (round-robin), which
//!   is exactly the shrinker's collapse direction.
//!
//! Determinism argument: the stack is single-threaded and otherwise
//! deterministic, so the k-th `choose` call of two runs with the same
//! configuration, fault plan, and tape sees the same site and the same `n`
//! — hence returns the same index, hence the runs stay in lockstep. The
//! tape is therefore a complete, byte-serialisable encoding of one
//! interleaving, and collapsing entries toward `0` moves the run toward the
//! canonical round-robin schedule.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Scheduler operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// Every choice is `0` (historical order); one relaxed load + branch.
    Disabled,
    /// Choices are drawn from the seeded stream and recorded on the tape.
    Recording,
    /// Choices are consumed from a supplied tape (`0` past the end).
    Replaying,
}

const SCHED_DISABLED: u8 = 0;
const SCHED_RECORDING: u8 = 1;
const SCHED_REPLAYING: u8 = 2;

#[derive(Default)]
struct SchedState {
    /// The tape: reduced choice per decision, in decision order.
    tape: Vec<u32>,
    /// Recording: site name per decision (diagnostics only, not part of
    /// the serialised schedule).
    sites: Vec<&'static str>,
    /// Replay cursor into `tape`.
    cursor: usize,
    /// SplitMix64 state (recording mode).
    rng: u64,
    /// Replay decisions taken past the end of the tape (padded with 0).
    overrun: u64,
}

#[derive(Default)]
struct SchedInner {
    mode: AtomicU8,
    state: Mutex<SchedState>,
}

/// Shared schedule handle. Clones observe the same state; a
/// default-constructed scheduler is permanently disabled (choice 0 — the
/// engine's historical order) until told to record or replay.
#[derive(Clone, Default)]
pub struct Scheduler {
    inner: Arc<SchedInner>,
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler").field("mode", &self.mode()).finish()
    }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scheduler {
    /// A disabled scheduler (choice 0 forever).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mode.
    pub fn mode(&self) -> SchedMode {
        match self.inner.mode.load(Ordering::Relaxed) {
            SCHED_RECORDING => SchedMode::Recording,
            SCHED_REPLAYING => SchedMode::Replaying,
            _ => SchedMode::Disabled,
        }
    }

    /// Whether choices are currently randomized or replayed (i.e. not the
    /// all-zero historical order).
    pub fn is_enabled(&self) -> bool {
        self.inner.mode.load(Ordering::Relaxed) != SCHED_DISABLED
    }

    /// Disable: every subsequent choice is 0 and nothing is recorded.
    pub fn off(&self) {
        self.inner.mode.store(SCHED_DISABLED, Ordering::Relaxed);
    }

    /// Start a recording run: clear the tape and draw every subsequent
    /// choice from a SplitMix64 stream seeded with `seed`.
    pub fn start_recording(&self, seed: u64) {
        let mut st = self.inner.state.lock().unwrap();
        st.tape.clear();
        st.sites.clear();
        st.cursor = 0;
        st.rng = seed;
        st.overrun = 0;
        self.inner.mode.store(SCHED_RECORDING, Ordering::Relaxed);
    }

    /// Start a replay run consuming `tape`; decisions past its end are 0.
    pub fn start_replay(&self, tape: Vec<u32>) {
        let mut st = self.inner.state.lock().unwrap();
        st.tape = tape;
        st.sites.clear();
        st.cursor = 0;
        st.overrun = 0;
        self.inner.mode.store(SCHED_REPLAYING, Ordering::Relaxed);
    }

    /// Stop and return the tape (recorded choices, or the replayed input).
    pub fn take_tape(&self) -> Vec<u32> {
        let mut st = self.inner.state.lock().unwrap();
        self.inner.mode.store(SCHED_DISABLED, Ordering::Relaxed);
        st.sites.clear();
        std::mem::take(&mut st.tape)
    }

    /// Decision sites of the last recording, in decision order
    /// (diagnostics; empty after replay).
    pub fn recorded_sites(&self) -> Vec<&'static str> {
        self.inner.state.lock().unwrap().sites.clone()
    }

    /// Replay decisions that ran past the end of the tape.
    pub fn overrun(&self) -> u64 {
        self.inner.state.lock().unwrap().overrun
    }

    /// Number of decisions taken so far in this run.
    pub fn decisions(&self) -> usize {
        let st = self.inner.state.lock().unwrap();
        match self.mode() {
            SchedMode::Replaying => st.cursor + st.overrun as usize,
            _ => st.tape.len(),
        }
    }

    /// Make one ordering decision at `site` among `n` alternatives.
    /// Returns an index `< n`. Disabled mode — and `n <= 1` in any mode —
    /// always returns 0 without touching the tape, so decision counts stay
    /// comparable across runs whose alternative sets momentarily collapse
    /// to one option.
    #[inline]
    pub fn choose(&self, site: &'static str, n: usize) -> usize {
        if self.inner.mode.load(Ordering::Relaxed) == SCHED_DISABLED || n <= 1 {
            return 0;
        }
        self.choose_slow(site, n)
    }

    #[cold]
    fn choose_slow(&self, site: &'static str, n: usize) -> usize {
        let mut st = self.inner.state.lock().unwrap();
        match self.inner.mode.load(Ordering::Relaxed) {
            SCHED_RECORDING => {
                let v = (splitmix64(&mut st.rng) % n as u64) as u32;
                st.tape.push(v);
                st.sites.push(site);
                v as usize
            }
            SCHED_REPLAYING => {
                if st.cursor < st.tape.len() {
                    let v = st.tape[st.cursor];
                    st.cursor += 1;
                    v as usize % n
                } else {
                    st.overrun += 1;
                    0
                }
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scheduler_always_picks_zero() {
        let s = Scheduler::new();
        for n in 1..10 {
            assert_eq!(s.choose("a", n), 0);
        }
        assert!(s.take_tape().is_empty());
    }

    #[test]
    fn recording_is_seed_deterministic_and_bounded() {
        let run = |seed| {
            let s = Scheduler::new();
            s.start_recording(seed);
            let picks: Vec<usize> = (2..20).map(|n| s.choose("a", n)).collect();
            (picks, s.take_tape())
        };
        let (p1, t1) = run(42);
        let (p2, t2) = run(42);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
        for (i, &p) in p1.iter().enumerate() {
            assert!(p < i + 2, "choice within bounds");
        }
        let (p3, _) = run(43);
        assert_ne!(p1, p3, "different seeds should diverge somewhere");
    }

    #[test]
    fn replay_reproduces_recorded_choices() {
        let s = Scheduler::new();
        s.start_recording(7);
        let rec: Vec<usize> = (0..30).map(|_| s.choose("a", 5)).collect();
        let tape = s.take_tape();
        s.start_replay(tape);
        let rep: Vec<usize> = (0..30).map(|_| s.choose("a", 5)).collect();
        assert_eq!(rec, rep);
        assert_eq!(s.overrun(), 0);
    }

    #[test]
    fn replay_pads_with_zero_past_tape_end() {
        let s = Scheduler::new();
        s.start_replay(vec![3, 1]);
        assert_eq!(s.choose("a", 5), 3);
        assert_eq!(s.choose("a", 5), 1);
        assert_eq!(s.choose("a", 5), 0);
        assert_eq!(s.choose("a", 5), 0);
        assert_eq!(s.overrun(), 2);
    }

    #[test]
    fn replay_re_reduces_modulo_live_n() {
        // A shrink may lower n at a later decision; the tape entry still
        // applies via `% n`.
        let s = Scheduler::new();
        s.start_replay(vec![7]);
        assert_eq!(s.choose("a", 3), 1, "7 % 3");
    }

    #[test]
    fn single_alternative_consumes_nothing() {
        let s = Scheduler::new();
        s.start_replay(vec![2, 2]);
        assert_eq!(s.choose("a", 1), 0);
        assert_eq!(s.choose("a", 3), 2, "n=1 call did not consume the entry");
    }

    #[test]
    fn clones_share_tape() {
        let s = Scheduler::new();
        let c = s.clone();
        s.start_recording(1);
        c.choose("a", 4);
        assert_eq!(s.take_tape().len(), 1);
    }
}
