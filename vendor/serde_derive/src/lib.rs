//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde stand-in (see `vendor/serde`). They emit empty marker
//! impls — just enough for derive annotations on plain (non-generic)
//! structs and enums to compile unchanged against the real serde API
//! surface used in this repo.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the struct/enum a derive is attached to.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => panic!("derive: expected type name, got {other:?}"),
                    };
                    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        panic!(
                            "the offline serde derive stub does not support generic type `{name}`"
                        );
                    }
                    return name;
                }
                // `pub`, `pub(crate)`, doc idents etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("derive: no struct/enum found in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().expect("valid impl tokens")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}
