//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic random-input test runner: `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `prop_assume!`, `Strategy` with `prop_map`/`boxed`,
//! `Just`, `any::<T>()`, integer/float range strategies, tuple strategies,
//! `collection::vec`, and `sample::Index`.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number and message but not a minimized input), and the RNG is
//! seeded from the test name so runs are reproducible across invocations.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub use test_runner::{ProptestConfig, TestCaseError};

/// Test-runner plumbing (config, error type, RNG).
pub mod test_runner {
    use rand::prelude::*;

    /// Per-block runner configuration. All fields public so callers can use
    /// functional-record-update against `default()`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The generated input did not satisfy a `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic per-test RNG driving all strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Seed from a test name (FNV-1a) so each property gets a stable,
        /// distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of type `Value`.
///
/// Object-safe subset of proptest's `Strategy`; `new_value` replaces the
/// real crate's `new_tree` since there is no shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.0.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        let u: f64 = rng.0.gen();
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        let u: f64 = rng.0.gen();
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy combinators that need a named home (used by macros).
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map};
    use super::{Strategy, TestRng};

    /// Weighted choice over type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone(), total: self.total }
        }
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof: all weights zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let mut pick = rng.0.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight walk exhausted")
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract index, resolved against a collection size at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve to a concrete index in `0..size`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            Index(rng.0.next_u64())
        }
    }
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a zero-arg function running `cases` random inputs through the
/// body. Attributes (including `#[test]`) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a property body (fails the case, not the
/// process, so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values compare equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Assert two values compare unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

/// Skip the current case when its generated input is unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Color {
        Red,
        Blue(u8),
    }

    fn color_strategy() -> impl Strategy<Value = Color> {
        prop_oneof![
            3 => Just(Color::Red),
            1 => (0u8..10).prop_map(Color::Blue),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Ranges stay in bounds, tuples and maps compose.
        #[test]
        fn ranges_and_tuples(
            a in 3u64..17,
            b in 0.25f64..=0.75,
            pair in (1u16..4, any::<bool>()).prop_map(|(x, f)| (x * 2, f)),
            v in prop::collection::vec(any::<u8>(), 1..9),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
            prop_assert!(pair.0 >= 2 && pair.0 <= 6);
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        /// prop_oneof respects arm types; assume rejects without failing.
        #[test]
        fn oneof_and_assume(c in color_strategy(), idx in any::<prop::sample::Index>()) {
            prop_assume!(c != Color::Red || idx.index(4) != 0);
            if let Color::Blue(n) = c {
                prop_assert!(n < 10, "blue out of range: {}", n);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let mut r1 = TestRng::from_name("x");
        let mut r2 = TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
        }
    }
}
