//! Offline stand-in for `criterion` 0.5.
//!
//! A minimal wall-clock micro-benchmark harness exposing the subset of the
//! criterion API this workspace's `benches/` use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId::new`, and the `criterion_group!` /
//! `criterion_main!` macros. No statistics beyond min/mean over the samples,
//! no plots, no saved baselines — it times the closure and prints one line
//! per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 20 }
    }
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Run a benchmark closure parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Times a closure over `sample_size` samples.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new() }
    }

    /// Time `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (closure never called iter)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!("{group}/{id}: mean {mean:?}, min {min:?} over {} samples", self.samples.len());
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert_eq!(calls, 4, "warm-up + 3 samples");
    }
}
