//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships a minimal serde facade: the two marker traits
//! and no-op derive macros. Nothing in the repo performs actual
//! serialization through serde (CSV/JSON exports are hand-rolled in
//! `smdb-obs` and the report binary); the derives exist so that type
//! definitions keep their upstream-compatible `#[derive(Serialize,
//! Deserialize)]` annotations and can switch to real serde unchanged once
//! a vendored copy is available.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of serde's `de` module, for `serde::de::DeserializeOwned` paths.
pub mod de {
    pub use crate::DeserializeOwned;
}
