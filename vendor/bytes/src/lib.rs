//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable,
//! cheaply-cloneable, reference-counted byte container with the subset of
//! the upstream API this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer (API-compatible subset of `bytes::Bytes`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Wrap a static slice (copies under the hood in this stand-in).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {}
#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
