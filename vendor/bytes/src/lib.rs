//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable,
//! cheaply-cloneable, reference-counted byte container with the subset of
//! the upstream API this workspace uses.
//!
//! Like the upstream crate, a [`Bytes`] value is a *view* (offset + length)
//! into a shared buffer: [`Bytes::slice`] produces a sub-view without
//! copying, so several log-record payloads can lend windows of one shared
//! allocation.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer (API-compatible subset of `bytes::Bytes`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), off: 0, len: 0 }
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data), off: 0, len: data.len() }
    }

    /// Wrap a static slice (copies under the hood in this stand-in).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// A sub-view of this buffer sharing the same allocation (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of range {}", self.len);
        Bytes { data: Arc::clone(&self.data), off: self.off + start, len: end - start }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), off: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {}
#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn slices_share_the_allocation() {
        let b = Bytes::copy_from_slice(&[10, 20, 30, 40, 50]);
        let head = b.slice(..2);
        let tail = b.slice(2..);
        assert_eq!(head.as_ref(), &[10, 20]);
        assert_eq!(tail.as_ref(), &[30, 40, 50]);
        assert_eq!(tail.slice(1..2).as_ref(), &[40]);
        assert_eq!(b.slice(..).len(), 5);
        assert!(b.slice(5..5).is_empty());
        // Equality and hashing are view-based, not allocation-based.
        assert_eq!(head, Bytes::copy_from_slice(&[10, 20]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::copy_from_slice(&[1]).slice(0..2);
    }
}
