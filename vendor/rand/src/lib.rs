//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — on top of
//! a xoshiro256** generator seeded via SplitMix64. Deterministic across
//! runs and platforms, which is all the workloads and property tests need.

use std::ops::{Range, RangeInclusive};

/// Core generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The standard distribution marker (subset of `rand::distributions`).
pub struct Standard;

/// Types samplable from a distribution.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling would be overkill here; a modulo
/// draw over 64 bits keeps bias below 2⁻⁴⁰ for every span this repo uses.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// ChaCha-based `StdRng`; statistical quality is ample for workload
    /// generation and property tests).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the stand-in has no cheaper small generator.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0u64..13);
            assert_eq!(x, b.gen_range(0u64..13));
            assert!(x < 13);
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            let _ = b.gen::<f64>();
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn inclusive_full_range_works() {
        let mut r = StdRng::seed_from_u64(9);
        let _: u64 = r.gen_range(1u64..=u64::MAX);
    }
}
